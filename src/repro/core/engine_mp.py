"""Multiprocess fan-out over the batched DM engine (``--engine dm-mp``).

:class:`MultiprocessDMEngine` shards the candidate columns that
:meth:`~repro.core.engine.BatchedDMEngine._evolve_blocks` would evolve in
one process across a persistent pool of worker processes.  Per-candidate
delta evolutions are independent (each column of the ``(n, C)`` delta
matrix depends only on its own pinned seeds), so a greedy round splits into
``workers`` contiguous candidate chunks that evolve and score concurrently;
the parent concatenates the per-chunk score vectors in chunk order, which
keeps selections byte-identical to :class:`~repro.core.engine.BatchedDMEngine`
no matter how many workers run.

Problem state is shipped once per worker, at pool start: under the
``fork`` start method the matrices are inherited copy-on-write for free,
under ``forkserver``/``spawn`` the pickled
:class:`~repro.core.problem.FJVoteProblem` (minus its session-specific
seeded-trajectory cache, see ``FJVoteProblem.__getstate__``) travels with
the ``Process`` arguments.  Each worker builds its own private
:class:`BatchedDMEngine` from it — per-round messages then carry only seed
id chunks and score vectors, never matrices.

Selection sessions fan out too: :class:`MultiprocessDMSession` keeps the
parent-side committed trajectory (for values and win-min prefix probes)
exactly like its base class, and *broadcasts* every ``commit`` to the pool
so each worker folds the chosen seed into a worker-local committed
trajectory by the same one-column extension the parent performs — bitwise
the same state, built once per worker instead of shipped per round.  A
worker that missed a broadcast (e.g. the pool started mid-session)
rebuilds the committed trajectory lazily from the ``(base, seeds)`` pair
every fan-out message carries, replaying the commit sequence so the
rebuilt trajectory is still bitwise identical.

On a single-core host the fan-out cannot beat the in-process engine on
wall-clock — IPC overhead buys nothing — but the sharding itself is
measurable either way: ``benchmarks/bench_engine_mp.py`` asserts on the
deterministic per-worker :class:`~repro.core.engine.EngineStats` counters
(critical-path dense column-steps), which translate to wall-clock on
multi-core hardware where each worker owns a memory domain.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import asdict
from typing import Iterable, Sequence

import numpy as np

from repro.core.engine import (
    BatchedDMEngine,
    BatchedDMSession,
    EngineStats,
    SeedSet,
)
from repro.core.problem import FJVoteProblem

#: Work counters folded from worker deltas into the parent's ``stats``
#: (and per-worker into ``worker_stats``).  Probe accounting
#: (``evaluate_calls`` / ``sets_evaluated``) is *not* in this list: the
#: parent counts probes itself, exactly as the single-process engine
#: would, so the counters stay comparable across worker counts.
_EVOLUTION_COUNTERS = (
    "sparse_steps",
    "sparse_nnz",
    "dense_column_steps",
    "trajectory_steps",
    "repin_steps",
    "repin_inserted",
    "repin_rebuilds",
)

#: Worker-local committed trajectories kept per worker (FIFO eviction);
#: mirrors ``FJVoteProblem.SEEDED_TRAJECTORY_CACHE``.
_WORKER_SESSION_CACHE = 8


def _rebuild_session(engine: BatchedDMEngine, base: tuple, seeds: tuple) -> dict:
    """Worker-side committed state for a session, rebuilt from scratch.

    Replays the exact commit sequence a :class:`BatchedDMSession` performs
    — base trajectory, then one single-seed extension per commit — so the
    rebuilt trajectory is bitwise identical to the parent's regardless of
    whether the worker saw the individual commit broadcasts.
    """
    traj = engine.problem.target_trajectory(tuple(base))
    committed = list(base)
    for seed in list(seeds)[len(base) :]:
        traj = engine.extend_trajectory(
            traj,
            np.asarray(committed, dtype=np.int64),
            np.array([seed], dtype=np.int64),
        )
        committed.append(int(seed))
    return {"seeds": list(seeds), "traj": traj}


def _worker_session(
    engine: BatchedDMEngine, sessions: dict, sid: int, base: tuple, seeds: tuple
) -> dict:
    """Fetch (or lazily rebuild) the worker's state for session ``sid``."""
    state = sessions.get(sid)
    if state is None or state["seeds"] != list(seeds) or state["traj"] is None:
        state = _rebuild_session(engine, base, seeds)
        evict = [k for k in sessions if k != sid]
        while len(evict) + 1 > _WORKER_SESSION_CACHE:
            sessions.pop(evict.pop(0))
        sessions[sid] = state
    return state


def _worker_main(conn, problem: FJVoteProblem, engine_kwargs: dict) -> None:
    """Worker loop: one private :class:`BatchedDMEngine`, commands via pipe.

    Every command reply carries the delta of the worker engine's
    :class:`EngineStats` counters so the parent can account the evolution
    work each worker actually performed.
    """
    engine = BatchedDMEngine(problem, **engine_kwargs)
    sessions: dict[int, dict] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        op = message[0]
        if op == "stop":
            break
        try:
            engine.stats.reset()
            if op == "ping":
                result = (os.getpid(), mp.current_process().name)
            elif op == "eval":
                result = engine._chunked_scores(message[1])
            elif op == "ext":
                _, sid, base, seeds, chunk = message
                state = _worker_session(engine, sessions, sid, base, seeds)
                result = engine.extension_values(
                    state["traj"], np.asarray(seeds, dtype=np.int64), chunk
                )
            elif op == "commit":
                _, sid, base, before, seed = message
                state = sessions.get(sid)
                if state is not None and state["seeds"] == list(before):
                    state["traj"] = engine.extend_trajectory(
                        state["traj"],
                        np.asarray(before, dtype=np.int64),
                        np.array([seed], dtype=np.int64),
                    )
                    state["seeds"].append(int(seed))
                else:
                    # Missed or out-of-order broadcast: remember the seed
                    # sequence, rebuild lazily on the next fan-out.
                    sessions[sid] = {
                        "seeds": list(before) + [int(seed)],
                        "traj": None,
                    }
                result = None
            else:
                raise ValueError(f"unknown dm-mp worker op {op!r}")
            conn.send(("ok", result, asdict(engine.stats)))
        except Exception as exc:  # pragma: no cover - worker-side failures
            import traceback

            conn.send(("err", f"{exc}\n{traceback.format_exc()}", None))


class _WorkerHandle:
    """One pool member: the process and the parent end of its pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class MultiprocessDMSession(BatchedDMSession):
    """Warm-started session whose commits are broadcast to the worker pool.

    The parent keeps the committed trajectory exactly like
    :class:`BatchedDMSession` (values, ``gain=None`` commits and win-min
    prefix probes are single-column work, cheapest done locally); each
    round's ``marginal_gains`` fans the candidate chunks out with the
    session id, and each ``commit`` tells every worker to fold the chosen
    seed into its local copy of the committed trajectory.
    """

    def __init__(self, engine: "MultiprocessDMEngine", base: SeedSet = ()) -> None:
        super().__init__(engine, base)
        self._base = tuple(self._seeds)
        self._sid = engine._next_session_id()

    def marginal_gains(self, candidates: SeedSet) -> np.ndarray:
        values = self.engine.session_extension_values(
            self._sid, self._base, tuple(self._seeds), self._traj, candidates
        )
        return values - self._value

    def commit(self, seed: int, *, gain: float | None = None) -> float:
        before = tuple(self._seeds)
        value = super().commit(seed, gain=gain)
        self.engine.broadcast_commit(self._sid, self._base, before, int(seed))
        return value


class MultiprocessDMEngine(BatchedDMEngine):
    """Exact DM evaluation sharded across a persistent process pool.

    Parameters
    ----------
    problem:
        The FJ-Vote instance (shipped to each worker once, at pool start).
    workers:
        Pool size (the ``dm-mp:<workers>`` CLI suffix); must be >= 1.
    start_method:
        ``multiprocessing`` start method: ``"fork"`` (default where
        available — matrices are inherited for free), ``"forkserver"`` or
        ``"spawn"`` (the problem is pickled to the worker instead).
    min_fanout:
        Below this many seed sets per call the parent — itself a full
        batched engine holding the same state — evaluates locally: a CELF
        stale-entry refresh is one column, not worth a round-trip.
        Results are bitwise identical either way.  Default ``2 * workers``.
    kwargs:
        Forwarded to :class:`BatchedDMEngine` in the parent *and* every
        worker (``batch_rows``, ``densify_threshold``, ``repin``, ...).

    The pool starts lazily on the first fanned-out call and is released by
    :meth:`close` (also via ``with`` or garbage collection).  The engine
    keeps per-worker :class:`EngineStats` in ``worker_stats`` — the max
    dense-column-step share across workers is the round's critical path,
    the deterministic scaling metric of ``benchmarks/bench_engine_mp.py``.
    """

    def __init__(
        self,
        problem: FJVoteProblem,
        *,
        workers: int = 2,
        start_method: str | None = None,
        min_fanout: int | None = None,
        **kwargs: object,
    ) -> None:
        super().__init__(problem, **kwargs)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"dm-mp needs at least one worker, got {workers}")
        self.workers = workers
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = str(start_method)
        self.min_fanout = (
            2 * workers if min_fanout is None else max(1, int(min_fanout))
        )
        self.worker_stats = [EngineStats() for _ in range(workers)]
        self._engine_kwargs = dict(kwargs)
        self._handles: list[_WorkerHandle] | None = None
        self._session_counter = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> list[_WorkerHandle]:
        if self._handles is None:
            ctx = mp.get_context(self.start_method)
            handles = []
            for _ in range(self.workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, self.problem, self._engine_kwargs),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                handles.append(_WorkerHandle(process, parent_conn))
            self._handles = handles
        return self._handles

    def close(self) -> None:
        """Stop the worker pool (idempotent; restarts lazily if used again)."""
        handles, self._handles = self._handles, None
        if not handles:
            return
        for handle in handles:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in handles:
            handle.process.join(timeout=10)
            if handle.process.is_alive():  # pragma: no cover - hung worker
                handle.process.terminate()
                handle.process.join(timeout=10)
            handle.conn.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    def ping(self) -> list[tuple[int, str]]:
        """Round-trip every worker; returns ``(pid, process name)`` pairs."""
        return self._run([("ping",)] * self.workers)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _run(self, messages: Sequence[tuple]) -> list:
        """Send one message per worker (at most), gather replies in order.

        Workers compute concurrently — all sends complete before the first
        receive — and replies are folded into ``stats`` / ``worker_stats``.
        """
        handles = self._ensure_pool()
        live: list[tuple[int, _WorkerHandle]] = []
        try:
            for index, message in enumerate(messages):
                handle = handles[index]
                handle.conn.send(message)
                live.append((index, handle))
        except (BrokenPipeError, OSError) as exc:
            # A dead worker mid-send would leave already-messaged workers
            # with undrained replies that a later, smaller fan-out could
            # mispair with its own requests; tear the pool down instead
            # (it restarts lazily on the next call).
            self.close()
            raise RuntimeError(
                f"dm-mp worker {len(live)} unreachable: {exc!r}"
            ) from exc
        out = []
        failure: str | None = None
        for index, handle in live:
            try:
                status, result, stats = handle.conn.recv()
            except (EOFError, OSError) as exc:
                failure = f"dm-mp worker {index} died: {exc!r}"
                continue
            if status != "ok":
                failure = f"dm-mp worker {index} failed:\n{result}"
                continue
            for name in _EVOLUTION_COUNTERS:
                value = stats.get(name, 0)
                setattr(self.stats, name, getattr(self.stats, name) + value)
                worker = self.worker_stats[index]
                setattr(worker, name, getattr(worker, name) + value)
            out.append(result)
        if failure is not None:
            self.close()
            raise RuntimeError(failure)
        return out

    def _chunk_indices(self, count: int) -> list[np.ndarray]:
        """Deterministic contiguous index chunks, one per worker, no empties."""
        return [
            idx
            for idx in np.array_split(np.arange(count), self.workers)
            if idx.size
        ]

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    def open_session(self, base: SeedSet = ()) -> MultiprocessDMSession:
        return MultiprocessDMSession(self, base)

    def _next_session_id(self) -> int:
        self._session_counter += 1
        return self._session_counter

    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        sets = self._normalize_sets(seed_sets)
        self.stats.evaluate_calls += 1
        self.stats.sets_evaluated += len(sets)
        if not sets:
            return np.empty(0, dtype=np.float64)
        if len(sets) < self.min_fanout:
            return self._chunked_scores(sets)
        chunks = self._chunk_indices(len(sets))
        results = self._run(
            [("eval", [sets[i] for i in idx]) for idx in chunks]
        )
        return np.concatenate(results)

    def session_extension_values(
        self,
        sid: int,
        base: tuple,
        seeds: tuple,
        traj: np.ndarray,
        candidates: SeedSet,
    ) -> np.ndarray:
        """One session round: candidate chunks fanned out with the session id.

        Small rounds (CELF refreshes) run on the parent's own committed
        trajectory; both paths produce bitwise-identical values.
        """
        cand = np.asarray(candidates, dtype=np.int64)
        if cand.size == 0:
            return np.empty(0, dtype=np.float64)
        if cand.size < self.min_fanout:
            return self.extension_values(
                traj, np.asarray(seeds, dtype=np.int64), cand
            )
        chunks = self._chunk_indices(cand.size)
        results = self._run(
            [("ext", sid, base, seeds, cand[idx]) for idx in chunks]
        )
        return np.concatenate(results)

    def broadcast_commit(
        self, sid: int, base: tuple, before: tuple, seed: int
    ) -> None:
        """Tell every worker to fold ``seed`` into session ``sid``'s state.

        A no-op while the pool has not started: the first fan-out message
        carries the full seed sequence and workers rebuild from it.
        """
        if self._handles is None:
            return
        self._run([("commit", sid, base, before, seed)] * self.workers)
