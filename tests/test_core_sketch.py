"""Tests for sketch-based (RS) estimation and selection."""

import numpy as np
import pytest

from repro.core.exact import brute_force_optimum
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import TruncatedWalks, WalkGreedyOptimizer
from repro.core.sketch import (
    converge_theta,
    estimate_opt_cumulative,
    sketch_select,
)
from repro.voting.scores import CopelandScore, CumulativeScore, PluralityScore
from tests.conftest import random_instance


def test_sketch_estimator_is_unbiased_for_cumulative():
    """n/θ-scaled sketch average approximates the true cumulative score."""
    state = random_instance(n=10, r=2, seed=3)
    problem = FJVoteProblem(state, 0, 3, CumulativeScore())
    rng = np.random.default_rng(4)
    starts = rng.integers(0, 10, size=60_000)
    walks = TruncatedWalks.generate(
        state.graph(0), state.stubbornness[0], state.initial_opinions[0], 3, starts, rng
    )
    optimizer = WalkGreedyOptimizer(walks, CumulativeScore(), None, grouping="walk")
    assert optimizer.estimated_score() == pytest.approx(
        problem.objective(()), rel=0.02
    )


def test_estimate_opt_is_a_lower_bound():
    state = random_instance(n=10, r=2, seed=5)
    problem = FJVoteProblem(state, 0, 2, CumulativeScore())
    _, opt = brute_force_optimum(problem, 2)
    lb = estimate_opt_cumulative(problem, 2, epsilon=0.3, rng=6, theta_cap=5000)
    assert lb <= opt + 0.5  # statistical slack
    assert lb >= 2  # k seeds guarantee cumulative >= k


def test_sketch_select_cumulative_end_to_end():
    state = random_instance(n=12, r=2, seed=7)
    problem = FJVoteProblem(state, 0, 3, CumulativeScore())
    result = sketch_select(problem, 2, epsilon=0.3, theta_cap=4000, rng=8)
    assert result.seeds.size == 2
    assert result.opt_lower_bound is not None
    assert result.theta <= 4000
    assert result.exact_objective >= problem.objective(()) - 1e-9


def test_sketch_select_explicit_theta_skips_estimation():
    state = random_instance(n=12, r=2, seed=9)
    problem = FJVoteProblem(state, 0, 3, CumulativeScore())
    result = sketch_select(problem, 2, theta=500, rng=10)
    assert result.theta == 500
    assert result.opt_lower_bound is None


@pytest.mark.parametrize("score", [PluralityScore(), CopelandScore()])
def test_sketch_select_rank_scores_use_heuristic_theta(score):
    state = random_instance(n=12, r=3, seed=11)
    problem = FJVoteProblem(state, 0, 3, score)
    result = sketch_select(problem, 2, theta_start=64, theta_cap=512, rng=12)
    assert 64 <= result.theta <= 512
    assert result.seeds.size == 2


def test_converge_theta_stops_at_cap():
    state = random_instance(n=10, r=2, seed=13)
    problem = FJVoteProblem(state, 0, 2, PluralityScore())
    theta = converge_theta(
        problem, 2, theta_start=32, theta_max=128, tolerance=0.0, rng=14
    )
    assert theta <= 128


def test_sketch_estimated_score_close_to_exact_for_selected_seeds():
    state = random_instance(n=10, r=2, seed=15)
    problem = FJVoteProblem(state, 0, 3, CumulativeScore())
    result = sketch_select(problem, 2, theta=20_000, rng=16)
    assert result.estimated_objective == pytest.approx(
        result.exact_objective, rel=0.05
    )


def test_sketch_select_budget_validation():
    state = random_instance(n=6, r=2, seed=17)
    problem = FJVoteProblem(state, 0, 2, CumulativeScore())
    with pytest.raises(ValueError):
        sketch_select(problem, 10, theta=100)
