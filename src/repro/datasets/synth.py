"""Shared synthetic-dataset building blocks (§VIII-A recipes).

Every dataset in the paper is assembled from the same three ingredients:

* **edge weights** from interaction counts ``a`` via ``1 - exp(-a / μ)``
  (common visits for Yelp, co-author counts for DBLP, retweet counts for
  Twitter; default μ = 10, justified in Appendix D), normalized so incoming
  weights sum to 1;
* **initial opinions** in [0, 1] derived from user behaviour (ratings,
  embedding similarity, sentiment);
* **stubbornness** as ``1 - variance`` of a user's opinion history, or
  uniform random when no history exists (Twitter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.problem import FJVoteProblem
from repro.opinion.state import CampaignState
from repro.utils.rng import ensure_rng
from repro.voting.scores import VotingScore


@dataclass
class Dataset:
    """A named problem instance: campaign state + default target and horizon."""

    name: str
    state: CampaignState
    target: int
    horizon: int = 20
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def n(self) -> int:
        """Number of users."""
        return self.state.n

    @property
    def r(self) -> int:
        """Number of candidates."""
        return self.state.r

    def problem(self, score: VotingScore, *, horizon: int | None = None) -> FJVoteProblem:
        """An :class:`FJVoteProblem` for this dataset's default target."""
        t = self.horizon if horizon is None else int(horizon)
        return FJVoteProblem(self.state, self.target, t, score)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset({self.name!r}, n={self.n}, r={self.r}, target={self.target})"


def activity_edge_weights(
    n_edges: int,
    mu: float = 10.0,
    *,
    mean_activity: float = 5.0,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Raw edge weights ``1 - exp(-a/μ)`` from Poisson interaction counts.

    ``a ~ 1 + Poisson(mean_activity)`` models "number of common visits" /
    "co-authorship count" / "retweet count"; more interactions mean higher
    influence [Potamias et al.], exactly as §VIII-A.
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    rng = ensure_rng(rng)
    activity = 1 + rng.poisson(mean_activity, size=n_edges)
    return 1.0 - np.exp(-activity / mu)


def variance_stubbornness(
    opinions: np.ndarray,
    *,
    history_noise: float = 0.25,
    history_length: int = 12,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Stubbornness ``1 - Var(opinion history)`` (DBLP/Yelp recipe).

    Simulates ``history_length`` periodic (monthly/yearly) re-measurements
    of each opinion with user-specific noise and returns one value per user
    (the mean over candidates), clipped to [0, 1].  Users whose opinions
    wobble a lot are easily swayed — low stubbornness.
    """
    rng = ensure_rng(rng)
    r, n = np.asarray(opinions).shape
    noise_scale = rng.uniform(0.0, history_noise, size=n)
    history = (
        opinions[None, :, :]
        + rng.normal(0.0, 1.0, size=(history_length, r, n)) * noise_scale[None, None, :]
    )
    history = np.clip(history, 0.0, 1.0)
    variance = history.var(axis=0).mean(axis=0)
    return np.clip(1.0 - 4.0 * variance, 0.0, 1.0)


def topic_opinions(
    n_users: int,
    candidate_topics: np.ndarray,
    membership: np.ndarray,
    *,
    concentration: float = 3.0,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Initial opinions as cosine similarity of latent topic vectors (DBLP recipe).

    Each user draws a Dirichlet topic vector concentrated on her community's
    topic; each candidate has a fixed topic vector.  The opinion of user v
    about candidate q is the cosine similarity of the two vectors, linearly
    rescaled to [0, 1] per candidate (mirroring the paper's normalization of
    embedding similarities).

    Returns ``(opinions (r, n), user_topics (n, n_topics))``.
    """
    rng = ensure_rng(rng)
    candidate_topics = np.asarray(candidate_topics, dtype=np.float64)
    r, n_topics = candidate_topics.shape
    alphas = np.ones((n_users, n_topics))
    alphas[np.arange(n_users), membership % n_topics] += concentration
    user_topics = np.vstack([rng.dirichlet(a) for a in alphas])
    cand_norm = candidate_topics / np.linalg.norm(candidate_topics, axis=1, keepdims=True)
    user_norm = user_topics / np.maximum(
        np.linalg.norm(user_topics, axis=1, keepdims=True), 1e-12
    )
    sims = cand_norm @ user_norm.T  # (r, n)
    lo = sims.min(axis=1, keepdims=True)
    hi = sims.max(axis=1, keepdims=True)
    opinions = (sims - lo) / np.maximum(hi - lo, 1e-12)
    return opinions, user_topics


def sentiment_opinions(
    n_users: int,
    r: int,
    *,
    polarization: float = 2.0,
    lean: np.ndarray | None = None,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Initial opinions as normalized sentiment scores (Twitter recipe).

    Per-user sentiment toward candidate q is Beta-distributed with a mean
    set by the user's latent lean (e.g. community-driven), mimicking VADER
    scores normalized to [0, 1].
    """
    rng = ensure_rng(rng)
    if lean is None:
        lean = rng.uniform(0.2, 0.8, size=(r, n_users))
    lean = np.asarray(lean, dtype=np.float64)
    if lean.shape != (r, n_users):
        raise ValueError(f"lean must have shape ({r}, {n_users})")
    a = 1.0 + polarization * lean
    b = 1.0 + polarization * (1.0 - lean)
    return rng.beta(a, b)
