"""Warm-engine hub and the request-coalescing batcher.

:class:`EngineHub` owns what stays hot across requests: the problem, one
engine per spec the server was started with (worker pools pinged at
startup so the first query pays no fork), an LRU of per-prefix
:class:`~repro.core.engine.SelectionSession`\\ s, and a top-k result
cache.  Deltas funnel through the hub so every layer (problem, engines,
walk store, caches) advances together.

:class:`CoalescingBatcher` executes one *batch* of parsed requests — the
queue drain the server's dispatcher hands it — and merges compatible
queries into shared engine rounds:

* ``marginal_gain`` requests with the same (engine, committed prefix)
  evolve the **union** of their candidate lists as one (n, C) block
  (:meth:`~repro.core.engine.SelectionSession.coalesced_gains`), then
  each request reads its own candidates out of the shared result;
* ``prefix_win_probability`` requests on the same engine share one
  :meth:`~repro.core.engine.ObjectiveEngine.query_sets` call over the
  deduplicated seed sets;
* identical ``top_k_seeds`` requests run greedy once (and version-keyed
  results are cached across batches);
* ``apply_delta`` acts as a barrier: queries buffered before it are
  flushed first, so responses on either side carry distinct versions.

Every merge is answer-preserving byte for byte: the engines' coalesced
entry points are batch-stable (bitwise identical however requests are
grouped), which the serving tests and ``benchmarks/bench_serving.py``
assert across backends, transports and worker counts.

All counters in :class:`ServeStats` are deterministic — a fixed request
sequence produces the same counts on every host — so the benchmark gates
coalescing effectiveness (``rounds_coalesced``, ``evolution_sets_saved``)
without timing noise.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core import faults

from repro.core.engine import (
    EngineSpec,
    ObjectiveEngine,
    SelectionSession,
)
from repro.core.greedy import greedy_engine
from repro.core.problem import DeltaReport, FJVoteProblem
from repro.serve.protocol import (
    ERROR_BAD_ENGINE_SPEC,
    ERROR_BAD_REQUEST,
    ERROR_ENGINE_NOT_LOADED,
    ERROR_INTERNAL,
    ProtocolError,
    Request,
    error_response,
    ok_response,
)


@dataclass
class ServeStats:
    """Deterministic serving counters (the ``stats`` op's ``serve`` block).

    ``engine_rounds`` counts engine-driving rounds actually executed;
    ``rounds_coalesced`` those that answered more than one request, and
    ``requests_coalesced`` how many requests they answered in total.
    ``sets_requested`` vs ``sets_evolved`` measures the work merging
    saved: the former sums every request's own seed-set count, the latter
    what the shared rounds actually evolved
    (``evolution_sets_saved = requested - evolved``, accumulated).
    ``requests_shed`` counts admissions refused with a structured
    ``overloaded`` error (queue at ``queue_cap``, or shutdown drain) and
    ``deadlines_exceeded`` requests dropped from the queue after their
    deadline expired — both overload answers cost no engine work.
    """

    requests_total: int = 0
    batches: int = 0
    engine_rounds: int = 0
    rounds_coalesced: int = 0
    requests_coalesced: int = 0
    sets_requested: int = 0
    sets_evolved: int = 0
    evolution_sets_saved: int = 0
    deltas_applied: int = 0
    topk_cache_hits: int = 0
    errors: int = 0
    requests_shed: int = 0
    deadlines_exceeded: int = 0

    def snapshot(self) -> dict[str, int]:
        return {field.name: int(getattr(self, field.name)) for field in fields(self)}


# ----------------------------------------------------------------------
# Parameter validation
# ----------------------------------------------------------------------
def _node_list(value: Any, name: str, n: int) -> tuple[int, ...]:
    if value is None:
        return ()
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(
            ERROR_BAD_REQUEST, f"{name!r} must be a list of node ids"
        )
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise ProtocolError(
                ERROR_BAD_REQUEST,
                f"{name!r} must contain integers, got {item!r}",
            )
        if not 0 <= item < n:
            raise ProtocolError(
                ERROR_BAD_REQUEST,
                f"{name!r} node {item} outside [0, {n})",
            )
        out.append(int(item))
    return tuple(out)


def _rows(value: Any, name: str, widths: tuple[int, ...]) -> list[tuple]:
    if value is None:
        return []
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(ERROR_BAD_REQUEST, f"{name!r} must be a list of rows")
    out = []
    for row in value:
        if not isinstance(row, (list, tuple)) or len(row) not in widths:
            raise ProtocolError(
                ERROR_BAD_REQUEST,
                f"{name!r} rows must have {' or '.join(map(str, widths))} "
                f"entries, got {row!r}",
            )
        out.append(tuple(row))
    return out


# ----------------------------------------------------------------------
# The hub of warm state
# ----------------------------------------------------------------------
class EngineHub:
    """Warm problem + engines + caches behind the batcher.

    Parameters
    ----------
    problem:
        The loaded :class:`~repro.core.problem.FJVoteProblem`.
    specs:
        Engine specs (strings or :class:`~repro.core.engine.EngineSpec`
        instances) to build and keep hot; the first is the default for
        requests that name none.  Engines are stored under the canonical
        spelling, deduplicating equivalent specs.  Requests may only use
        loaded specs (a valid-but-unloaded spec answers
        ``engine-not-loaded``).
    rng:
        Seed for the stochastic backends (reproducible estimators).
    store:
        Optional shared :class:`~repro.core.walk_store.WalkStore` the
        ``rw-store`` specs draw from (the CLI's ``--store-dir`` store);
        deltas are forwarded through it.
    session_cap / topk_cache_cap:
        LRU bounds on cached per-prefix sessions and top-k results.
    """

    def __init__(
        self,
        problem: FJVoteProblem,
        specs: Sequence[str | EngineSpec],
        *,
        rng: int | np.random.Generator | None = None,
        store: Any = None,
        session_cap: int = 32,
        topk_cache_cap: int = 64,
    ) -> None:
        if not specs:
            raise ValueError("EngineHub needs at least one engine spec")
        self.problem = problem
        self._store = store
        self.session_cap = int(session_cap)
        self.topk_cache_cap = int(topk_cache_cap)
        self._engines: dict[str, ObjectiveEngine] = {}
        # Engines are keyed by the spec's *canonical* spelling, so
        # equivalent forms ("dm-mp:2" vs "dm-mp:2:pipe") share one warm
        # pool instead of forking duplicates.
        parsed_specs = [EngineSpec.parse(spec) for spec in specs]
        self.default_spec = parsed_specs[0].canonical()
        for parsed in parsed_specs:
            key = parsed.canonical()
            if key in self._engines:
                continue
            kwargs: dict[str, Any] = {}
            if store is not None and parsed.name == "rw-store":
                kwargs["store"] = store
            self._engines[key] = parsed.build(problem, rng, **kwargs)
        self._sessions: OrderedDict[tuple, SelectionSession] = OrderedDict()
        self._topk: OrderedDict[tuple, dict] = OrderedDict()

    @property
    def specs(self) -> tuple[str, ...]:
        return tuple(self._engines)

    def warm(self) -> None:
        """Start every pool now, so the first query pays no fork/mmap.

        ``ping`` starts the ``dm-mp`` worker pools (a warm pool is what
        makes small coalesced rounds cheap); the problem's competitor
        cache is materialized for the scoring paths.  Walk stores were
        already opened (and their blocks loaded or generated) when the
        engines were built.
        """
        self.problem.others_by_user()
        for engine in self._engines.values():
            ping = getattr(engine, "ping", None)
            if callable(ping):
                ping()

    def resolve(self, spec: Any) -> tuple[str, ObjectiveEngine]:
        """Map a request's ``engine`` param to a loaded engine.

        Malformed specs answer with the registry's own
        :meth:`~repro.core.engine.EngineSpec.parse` message as a
        structured ``bad-engine-spec`` error instead of dropping the
        connection; well-formed specs this server was not started with
        answer ``engine-not-loaded``.  Specs are canonicalized before
        lookup, so any equivalent spelling reaches the warm engine.
        """
        if spec is None:
            return self.default_spec, self._engines[self.default_spec]
        if not isinstance(spec, (str, EngineSpec)):
            raise ProtocolError(
                ERROR_BAD_REQUEST, "'engine' must be an engine spec string"
            )
        try:
            key = EngineSpec.parse(spec).canonical()
        except ValueError as exc:
            raise ProtocolError(ERROR_BAD_ENGINE_SPEC, str(exc)) from None
        engine = self._engines.get(key)
        if engine is not None:
            return key, engine
        raise ProtocolError(
            ERROR_ENGINE_NOT_LOADED,
            f"engine {spec!r} is valid but not loaded by this server; "
            f"loaded specs: {sorted(self._engines)}",
        )

    # ------------------------------------------------------------------
    def session(self, key: str, seeds: tuple[int, ...]) -> SelectionSession:
        """The warm session for (engine, committed prefix), LRU-cached.

        Cache keys include the problem versions, so a delta can never
        serve a stale trajectory — post-delta requests open fresh
        sessions (the delta also clears the cache outright).
        """
        cache_key = (
            key,
            self.problem.graph_version,
            self.problem.opinion_version,
            seeds,
        )
        session = self._sessions.get(cache_key)
        if session is not None:
            self._sessions.move_to_end(cache_key)
            return session
        session = self._engines[key].open_session(seeds)
        self._sessions[cache_key] = session
        while len(self._sessions) > self.session_cap:
            self._sessions.popitem(last=False)
        return session

    def top_k(
        self,
        key: str,
        k: int,
        lazy: bool,
        candidates: tuple[int, ...] | None,
    ) -> tuple[dict, bool]:
        """Greedy selection, cached per (engine, versions, query); returns
        ``(result, was_cached)``."""
        cache_key = (
            key,
            self.problem.graph_version,
            self.problem.opinion_version,
            int(k),
            bool(lazy),
            candidates,
        )
        cached = self._topk.get(cache_key)
        if cached is not None:
            self._topk.move_to_end(cache_key)
            return cached, True
        result = greedy_engine(
            self._engines[key],
            int(k),
            lazy=bool(lazy),
            candidates=None if candidates is None else list(candidates),
        )
        payload = {
            "seeds": [int(s) for s in result.seeds],
            "objective": float(result.objective),
            "gains": [float(g) for g in result.gains],
            "evaluations": int(result.evaluations),
        }
        self._topk[cache_key] = payload
        while len(self._topk) > self.topk_cache_cap:
            self._topk.popitem(last=False)
        return payload, False

    def apply_delta(
        self,
        edges_added: Iterable[tuple],
        edges_removed: Iterable[tuple],
        opinions_changed: Iterable[tuple],
        candidate: int | None,
    ) -> DeltaReport:
        """One delta through every warm layer, caches dropped first.

        Sessions are cleared *before* the engines see the report so the
        engines' own weak-session refresh has (almost) nothing to do;
        ``sessions="rebuild"`` covers any session a client still holds.
        The shared walk store is patched after the engines (walk engines
        forward the report to their store themselves — store patching is
        idempotent per graph version, so double delivery is safe).
        """
        try:
            report = self.problem.apply_delta(
                edges_added=list(edges_added),
                edges_removed=list(edges_removed),
                opinions_changed=list(opinions_changed),
                candidate=candidate,
            )
        except (ValueError, IndexError) as exc:
            raise ProtocolError(ERROR_BAD_REQUEST, str(exc)) from None
        self._sessions.clear()
        self._topk.clear()
        for engine in self._engines.values():
            engine.apply_delta(report, sessions="rebuild")
        if self._store is not None:
            self._store.apply_delta(report)
        return report

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Problem/engine/pool snapshot for the ``stats`` op."""
        problem = self.problem
        return {
            "problem": {
                "n": int(problem.n),
                "r": int(problem.r),
                "horizon": int(problem.horizon),
                "target": int(problem.target),
                "score": type(problem.score).__name__,
                "graph_version": int(problem.graph_version),
                "opinion_version": int(problem.opinion_version),
            },
            "default_engine": self.default_spec,
            "engines": {
                spec: {
                    "is_estimate": bool(engine.is_estimate),
                    "pool": engine.pool_stats(),
                }
                for spec, engine in self._engines.items()
            },
            "sessions_cached": len(self._sessions),
            "topk_cached": len(self._topk),
        }

    def close(self) -> None:
        """Release every engine (worker pools via ``stop_worker_pool``)
        and the shared store; idempotent."""
        self._sessions.clear()
        self._topk.clear()
        engines, self._engines = dict(self._engines), {}
        for engine in engines.values():
            engine.close()
        # Restartable: keep the mapping so a closed hub can still answer
        # describe(); engines themselves restart pools lazily if reused.
        self._engines = engines
        if self._store is not None:
            self._store.close()


# ----------------------------------------------------------------------
# The coalescing batcher
# ----------------------------------------------------------------------
class CoalescingBatcher:
    """Executes one drained batch of requests with round coalescing.

    Synchronous and deterministic: the server's dispatcher calls
    :meth:`execute` in a worker thread; tests and benchmarks call it
    directly.  Requests keep their slots — response ``i`` answers request
    ``i`` — while compatible queries share engine rounds (see the module
    docstring for the merge rules and the byte-identity contract).
    """

    def __init__(self, hub: EngineHub, stats: ServeStats | None = None) -> None:
        self.hub = hub
        self.stats = stats if stats is not None else ServeStats()

    # ------------------------------------------------------------------
    def execute(self, requests: Sequence[Request]) -> list[dict]:
        spec = faults.maybe_fail("serve-delay", batch=self.stats.batches)
        if spec is not None and spec.value:
            # Stall this round; requests queueing up behind it expire
            # their deadlines deterministically (overload chaos tests).
            time.sleep(float(spec.value))
        self.stats.batches += 1
        self.stats.requests_total += len(requests)
        responses: list[dict | None] = [None] * len(requests)
        buffered: list[tuple[int, Request]] = []
        for i, request in enumerate(requests):
            if request.op == "apply_delta":
                # Barrier: answer everything buffered against the current
                # versions first, then mutate.
                self._flush(buffered, responses)
                buffered = []
                responses[i] = self._guarded(request, self._handle_delta)
            elif request.op == "ping":
                responses[i] = ok_response(
                    request.id,
                    {"pong": request.params.get("payload")},
                    **self._versions(),
                )
            elif request.op == "stats":
                responses[i] = self._guarded(request, self._handle_stats)
            else:
                buffered.append((i, request))
        self._flush(buffered, responses)
        assert all(r is not None for r in responses)
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _versions(self) -> dict[str, int]:
        return {
            "graph_version": int(self.hub.problem.graph_version),
            "opinion_version": int(self.hub.problem.opinion_version),
        }

    def _error(self, request: Request, exc: ProtocolError) -> dict:
        self.stats.errors += 1
        return error_response(
            request.id, exc.code, exc.message, **self._versions()
        )

    def _guarded(self, request: Request, handler) -> dict:
        try:
            return handler(request)
        except ProtocolError as exc:
            return self._error(request, exc)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return self._error(
                request,
                ProtocolError(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"),
            )

    def _account_round(self, served: int, requested: int, evolved: int) -> None:
        self.stats.engine_rounds += 1
        if served > 1:
            self.stats.rounds_coalesced += 1
            self.stats.requests_coalesced += served
        self.stats.sets_requested += requested
        self.stats.sets_evolved += evolved
        self.stats.evolution_sets_saved += max(requested - evolved, 0)

    # ------------------------------------------------------------------
    def _handle_stats(self, request: Request) -> dict:
        result = {"serve": self.stats.snapshot(), **self.hub.describe()}
        return ok_response(request.id, result, **self._versions())

    def _handle_delta(self, request: Request) -> dict:
        params = request.params
        edges_added = _rows(params.get("edges_added"), "edges_added", (3,))
        edges_removed = _rows(params.get("edges_removed"), "edges_removed", (2,))
        opinions = _rows(params.get("opinions_changed"), "opinions_changed", (3,))
        candidate = params.get("candidate")
        if candidate is not None and (
            isinstance(candidate, bool) or not isinstance(candidate, int)
        ):
            raise ProtocolError(
                ERROR_BAD_REQUEST, "'candidate' must be an integer"
            )
        report = self.hub.apply_delta(
            edges_added, edges_removed, opinions, candidate
        )
        self.stats.deltas_applied += 1
        touched: set[int] = set()
        for nodes in report.touched_by_candidate.values():
            touched.update(int(v) for v in nodes)
        result = {
            "edges_added": int(report.edges_added),
            "edges_removed": int(report.edges_removed),
            "opinions_changed": sum(
                len(nodes) for nodes in report.opinions_by_candidate.values()
            ),
            "touched_nodes": len(touched),
            "structural": bool(report.structural),
        }
        return ok_response(request.id, result, **self._versions())

    # ------------------------------------------------------------------
    def _flush(
        self,
        buffered: list[tuple[int, Request]],
        responses: list[dict | None],
    ) -> None:
        """Group buffered queries, run each group as one engine round."""
        gains: OrderedDict[tuple, list] = OrderedDict()
        wins: OrderedDict[str, list] = OrderedDict()
        topk: OrderedDict[tuple, list] = OrderedDict()
        n = self.hub.problem.n
        for i, request in buffered:
            try:
                key, _ = self.hub.resolve(request.params.get("engine"))
                if request.op == "marginal_gain":
                    seeds = _node_list(request.params.get("seeds"), "seeds", n)
                    cand = _node_list(
                        request.params.get("candidates"), "candidates", n
                    )
                    if not cand:
                        raise ProtocolError(
                            ERROR_BAD_REQUEST,
                            "'candidates' must be a non-empty list",
                        )
                    gains.setdefault((key, seeds), []).append((i, request, cand))
                elif request.op == "prefix_win_probability":
                    seeds = _node_list(request.params.get("seeds"), "seeds", n)
                    wins.setdefault(key, []).append((i, request, seeds))
                elif request.op == "top_k_seeds":
                    k = request.params.get("k")
                    if isinstance(k, bool) or not isinstance(k, int):
                        raise ProtocolError(
                            ERROR_BAD_REQUEST, "'k' must be an integer"
                        )
                    if not 1 <= k <= n:
                        raise ProtocolError(
                            ERROR_BAD_REQUEST, f"'k' must be in [1, {n}]"
                        )
                    cand_param = request.params.get("candidates")
                    cand_key = (
                        None
                        if cand_param is None
                        else _node_list(cand_param, "candidates", n)
                    )
                    lazy = bool(request.params.get("lazy", False))
                    topk.setdefault((key, k, lazy, cand_key), []).append(
                        (i, request)
                    )
                else:  # pragma: no cover - parse_request gates the ops
                    raise ProtocolError(
                        ERROR_BAD_REQUEST, f"unroutable op {request.op!r}"
                    )
            except ProtocolError as exc:
                responses[i] = self._error(request, exc)
        for (key, seeds), members in gains.items():
            self._run_gains_group(key, seeds, members, responses)
        for key, members in wins.items():
            self._run_wins_group(key, members, responses)
        for (key, k, lazy, cand_key), members in topk.items():
            self._run_topk_group(key, k, lazy, cand_key, members, responses)

    def _group_error(
        self, members: list, responses: list, exc: Exception
    ) -> None:
        wrapped = (
            exc
            if isinstance(exc, ProtocolError)
            else ProtocolError(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}")
        )
        for member in members:
            responses[member[0]] = self._error(member[1], wrapped)

    def _run_gains_group(
        self,
        key: str,
        seeds: tuple[int, ...],
        members: list,
        responses: list,
    ) -> None:
        """One warm round answers every request sharing this prefix."""
        try:
            union = sorted({c for _, _, cand in members for c in cand})
            session = self.hub.session(key, seeds)
            values = session.coalesced_gains(
                np.asarray(union, dtype=np.int64)
            )
            base_value = float(session.value)
            lookup = dict(zip(union, (float(v) for v in values)))
        except ProtocolError as exc:
            self._group_error(members, responses, exc)
            return
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            self._group_error(members, responses, exc)
            return
        self._account_round(
            served=len(members),
            requested=sum(len(cand) for _, _, cand in members),
            evolved=len(union),
        )
        versions = self._versions()
        for i, request, cand in members:
            responses[i] = ok_response(
                request.id,
                {
                    "seeds": list(seeds),
                    "candidates": list(cand),
                    "gains": [lookup[c] for c in cand],
                    "value": base_value,
                },
                **versions,
            )

    def _run_wins_group(
        self, key: str, members: list, responses: list
    ) -> None:
        """One ``query_sets`` round answers every win/value probe."""
        try:
            engine = self.hub._engines[key]
            slots: dict[tuple[int, ...], int] = {}
            for _, _, seeds in members:
                canonical = tuple(sorted(set(seeds)))
                if canonical not in slots:
                    slots[canonical] = len(slots)
            sets = list(slots)
            values, win_flags = engine.query_sets(sets, wins=True)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            self._group_error(members, responses, exc)
            return
        self._account_round(
            served=len(members), requested=len(members), evolved=len(sets)
        )
        versions = self._versions()
        assert win_flags is not None
        for i, request, seeds in members:
            slot = slots[tuple(sorted(set(seeds)))]
            won = bool(win_flags[slot])
            responses[i] = ok_response(
                request.id,
                {
                    "seeds": list(seeds),
                    "wins": won,
                    "win_probability": 1.0 if won else 0.0,
                    "value": float(values[slot]),
                },
                **versions,
            )

    def _run_topk_group(
        self,
        key: str,
        k: int,
        lazy: bool,
        cand_key: tuple[int, ...] | None,
        members: list,
        responses: list,
    ) -> None:
        """Identical top-k requests run greedy once (or hit the cache)."""
        try:
            result, cached = self.hub.top_k(key, k, lazy, cand_key)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            self._group_error(members, responses, exc)
            return
        if cached:
            self.stats.topk_cache_hits += len(members)
            self.stats.sets_requested += result["evaluations"] * len(members)
            self.stats.evolution_sets_saved += (
                result["evaluations"] * len(members)
            )
        else:
            self._account_round(
                served=len(members),
                requested=result["evaluations"] * len(members),
                evolved=result["evaluations"],
            )
        versions = self._versions()
        for i, request in members:
            responses[i] = ok_response(request.id, dict(result), **versions)
