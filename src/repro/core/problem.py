"""Problem 1 (FJ-Vote) as a first-class object.

An :class:`FJVoteProblem` fixes the campaign state, the target candidate, the
time horizon and the scoring function, and exposes the objective
``F(B(t)[S], c_q)`` as a function of the seed set ``S``.  Competitor opinions
at the horizon never depend on the target's seeds (campaigns diffuse
independently, §II-B), so they are computed once and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.opinion.fj import fj_evolve
from repro.opinion.state import CampaignState
from repro.utils.validation import check_time_horizon
from repro.voting.rules import is_strict_winner, score_all_candidates
from repro.voting.scores import SeparableScore, VotingScore


@dataclass(frozen=True)
class DeltaReport:
    """What :meth:`FJVoteProblem.apply_delta` changed, for cache layers.

    Downstream consumers (``BatchedDMEngine.apply_delta``,
    ``WalkStore.apply_delta``, the ``dm-mp`` delta broadcast) key their
    invalidation on this report instead of re-deriving it from the graph.

    Attributes
    ----------
    graph_version / opinion_version:
        The problem's monotone versions *after* this delta.  Only graph
        (edge) changes bump ``graph_version`` — persisted walk stores key
        their validity on it, because stored walks depend on the graph and
        stubbornness but never on initial opinions.
    touched_nodes:
        Sorted union, over all changed graphs, of columns whose in-edge
        distribution changed (the nodes a reverse walk must not step *from*
        for its stored bytes to stay valid).
    touched_by_candidate:
        Per-candidate view of ``touched_nodes`` (candidates sharing a
        changed graph all appear).
    opinions_by_candidate:
        Per-candidate sorted node arrays whose initial opinions changed.
    structural:
        Whether any graph's sparsity pattern changed (insert/remove) as
        opposed to in-place weight rewrites.
    """

    graph_version: int
    opinion_version: int
    touched_nodes: np.ndarray
    touched_by_candidate: dict[int, np.ndarray] = field(default_factory=dict)
    opinions_by_candidate: dict[int, np.ndarray] = field(default_factory=dict)
    #: Per-candidate ``(nodes, new - old)`` opinion shifts, aligned with
    #: ``opinions_by_candidate`` — what a session correction patch seeds
    #: its ``d·Δb⁰`` forcing term with.
    opinion_deltas: dict[int, tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    structural: bool = False
    edges_added: int = 0
    edges_removed: int = 0
    competitor_rows_refreshed: int = 0

    @property
    def empty(self) -> bool:
        return not self.touched_by_candidate and not self.opinions_by_candidate

    def target_touched(self, target: int) -> np.ndarray:
        """Graph-touched nodes for candidate ``target`` (empty if untouched)."""
        return self.touched_by_candidate.get(target, np.empty(0, dtype=np.int64))


class FJVoteProblem:
    """Seed-selection problem: maximize ``F(B(t)[S], c_q)`` s.t. ``|S| = k``.

    Parameters
    ----------
    state:
        The multi-campaign instance (graphs, B⁰, stubbornness).
    target:
        Index ``q`` of the target candidate.
    horizon:
        Time horizon ``t`` at which the vote takes place.
    score:
        One of the :mod:`repro.voting.scores` functions.
    """

    def __init__(
        self,
        state: CampaignState,
        target: int,
        horizon: int,
        score: VotingScore,
        *,
        competitor_seeds: dict[int, np.ndarray] | None = None,
    ) -> None:
        if not 0 <= target < state.r:
            raise ValueError(f"target must be in [0, {state.r}), got {target}")
        self.state = state
        self.target = int(target)
        self.horizon = check_time_horizon(horizon)
        self.score = score
        # §II-C Remark (2): competitors may have their own (known, fixed)
        # seed sets placed at time 0.  They only shift the competitors'
        # horizon opinions, which stay independent of the target's seeds.
        self.competitor_seeds: dict[int, np.ndarray] = {}
        for cand, seeds in (competitor_seeds or {}).items():
            cand = int(cand)
            if cand == self.target:
                raise ValueError(
                    "competitor_seeds must not include the target candidate"
                )
            if not 0 <= cand < state.r:
                raise ValueError(f"unknown candidate index {cand}")
            self.competitor_seeds[cand] = np.asarray(seeds, dtype=np.int64)
        self._competitors: np.ndarray | None = None
        self._others_by_user: np.ndarray | None = None
        self._base_target: np.ndarray | None = None
        self._base_trajectory: np.ndarray | None = None
        self._seeded_trajectories: dict[tuple[int, ...], np.ndarray] = {}
        #: Monotone counters bumped by :meth:`apply_delta` (graph / opinion
        #: churn respectively).  Persisted walk stores pin ``graph_version``.
        self.graph_version = 0
        self.opinion_version = 0
        #: Number of FJ evolution steps (one dense n-vector update each)
        #: spent filling this problem's caches — competitor rows, base
        #: target row/trajectory, seeded trajectories, and delta-driven
        #: refreshes.  Benchmarks compare this across incremental vs.
        #: from-scratch refresh paths.
        self.evolution_steps = 0

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of users."""
        return self.state.n

    @property
    def r(self) -> int:
        """Number of candidates."""
        return self.state.r

    def competitor_opinions(self) -> np.ndarray:
        """``(r-1, n)`` horizon opinions of all non-target candidates (cached).

        Competitors with entries in ``competitor_seeds`` diffuse from their
        seeded ``(b⁰, D)``; the caches remain valid because these seed sets
        are fixed inputs, not decision variables.
        """
        if self._competitors is None:
            rows = []
            for x in range(self.r):
                if x == self.target:
                    continue
                if x in self.competitor_seeds:
                    b0_x, d_x = self.state.seeded(x, self.competitor_seeds[x])
                else:
                    b0_x = self.state.initial_opinions[x]
                    d_x = self.state.stubbornness[x]
                rows.append(fj_evolve(b0_x, d_x, self.state.graph(x), self.horizon))
                self.evolution_steps += self.horizon
            self._competitors = (
                np.vstack(rows) if rows else np.empty((0, self.n), dtype=np.float64)
            )
        return self._competitors

    def others_by_user(self) -> np.ndarray:
        """``(n, r-1)`` transpose of :meth:`competitor_opinions` (cached)."""
        if self._others_by_user is None:
            self._others_by_user = np.ascontiguousarray(self.competitor_opinions().T)
        return self._others_by_user

    def target_opinions(self, seeds: np.ndarray | tuple = ()) -> np.ndarray:
        """Horizon opinions about the target with ``seeds`` applied."""
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size == 0:
            if self._base_target is None:
                self._base_target = fj_evolve(
                    self.state.initial_opinions[self.target],
                    self.state.stubbornness[self.target],
                    self.state.graph(self.target),
                    self.horizon,
                )
                self.evolution_steps += self.horizon
            return self._base_target
        b0, d = self.state.seeded(self.target, seeds)
        self.evolution_steps += self.horizon
        return fj_evolve(b0, d, self.state.graph(self.target), self.horizon)

    #: Seeded trajectories kept alive at once (FIFO eviction).  Each entry is
    #: a dense ``(horizon+1, n)`` array, so the cap stays deliberately small;
    #: selection sessions carry their own warm state beyond this.
    SEEDED_TRAJECTORY_CACHE = 8

    def target_trajectory(self, seeds: np.ndarray | tuple = ()) -> np.ndarray:
        """``(horizon+1, n)`` target opinions at every step under ``seeds`` (cached).

        Row ``s`` is ``b_q(s)`` with ``seeds`` pinned to opinion 1.  The
        unseeded call is the shared base trajectory the batched engine
        perturbs: seeding only *pins* coordinates, so every seeded evolution
        is this trajectory plus a homogeneous delta (see
        :mod:`repro.core.engine`).  Seeded bases are cached too (keyed by the
        deduplicated seed set, bounded FIFO) — they anchor warm-started
        selection sessions, which evolve each round's candidate deltas
        against the *committed* trajectory instead of replaying the committed
        seeds from scratch.
        """
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if seeds.size:
            key = tuple(int(v) for v in seeds)
            cached = self._seeded_trajectories.get(key)
            if cached is None:
                from repro.opinion.fj import fj_trajectory

                b0, d = self.state.seeded(self.target, seeds)
                steps = fj_trajectory(
                    b0, d, self.state.graph(self.target), self.horizon
                )
                cached = np.vstack([b[None, :] for b in steps])
                self.evolution_steps += self.horizon
                while len(self._seeded_trajectories) >= self.SEEDED_TRAJECTORY_CACHE:
                    self._seeded_trajectories.pop(
                        next(iter(self._seeded_trajectories))
                    )
                self._seeded_trajectories[key] = cached
            return cached
        if self._base_trajectory is None:
            from repro.opinion.fj import fj_trajectory

            steps = fj_trajectory(
                self.state.initial_opinions[self.target],
                self.state.stubbornness[self.target],
                self.state.graph(self.target),
                self.horizon,
            )
            self._base_trajectory = np.vstack([b[None, :] for b in steps])
            self.evolution_steps += self.horizon
            if self._base_target is None:
                self._base_target = self._base_trajectory[-1]
        return self._base_trajectory

    # ------------------------------------------------------------------
    # Incremental deltas
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        edges_added: "list[tuple[int, int, float]] | tuple" = (),
        edges_removed: "list[tuple[int, int]] | tuple" = (),
        opinions_changed: "list[tuple[int, int, float]] | tuple" = (),
        *,
        candidate: int | None = None,
    ) -> DeltaReport:
        """Apply graph/opinion churn in place; re-solve cost scales with it.

        ``edges_added`` / ``edges_removed`` are forwarded to
        :meth:`InfluenceGraph.apply_edge_delta` on ``candidate``'s graph
        (default: the target's); candidates *sharing* that graph object are
        all marked touched.  ``opinions_changed`` holds ``(candidate, node,
        value)`` triples rewriting initial opinions (clipped to ``[0, 1]``).

        Caches are refreshed surgically instead of dropped wholesale:

        * competitor horizon rows are recomputed *only* for touched
          competitors (bit-identical to a cold recompute — each row is an
          independent ``fj_evolve``), untouched rows keep their bytes;
        * the target's base row/trajectory and seeded-trajectory cache are
          invalidated lazily only when the target itself was touched;
        * ``graph_version`` bumps on edge churn (persisted walk stores pin
          it), ``opinion_version`` on opinion churn (walk stores *survive*
          opinion-only deltas — stored walks never depend on ``B⁰``).

        Returns a :class:`DeltaReport` that downstream layers
        (``BatchedDMEngine.apply_delta``, ``WalkStore.apply_delta``, the
        ``dm-mp`` delta broadcast) consume to invalidate exactly what the
        delta touched.
        """
        cand = self.target if candidate is None else int(candidate)
        if not 0 <= cand < self.r:
            raise ValueError(f"candidate must be in [0, {self.r}), got {cand}")
        graph = self.state.graph(cand)
        touched, structural = graph.apply_edge_delta(edges_added, edges_removed)
        touched_by_candidate: dict[int, np.ndarray] = {}
        if touched.size:
            for q in range(self.r):
                if self.state.graph(q) is graph:
                    touched_by_candidate[q] = touched
        ops = [(int(q), int(v), float(x)) for q, v, x in opinions_changed]
        opinions_by_candidate: dict[int, np.ndarray] = {}
        opinion_deltas: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        if ops:
            by_cand: dict[int, dict[int, float]] = {}
            for q, v, x in ops:
                if not 0 <= q < self.r:
                    raise ValueError(f"opinion candidate {q} out of range")
                if not 0 <= v < self.n:
                    raise ValueError(f"opinion node {v} out of range")
                if not np.isfinite(x):
                    raise ValueError(f"opinion value for ({q}, {v}) not finite")
                # Last write wins when one node appears twice.
                by_cand.setdefault(q, {})[v] = min(max(x, 0.0), 1.0)
            b0 = self.state.initial_opinions
            b0.setflags(write=True)
            try:
                for q, writes in sorted(by_cand.items()):
                    nodes = np.array(sorted(writes), dtype=np.int64)
                    values = np.array([writes[int(v)] for v in nodes])
                    shift = values - b0[q, nodes]
                    b0[q, nodes] = values
                    opinions_by_candidate[q] = nodes
                    opinion_deltas[q] = (nodes, shift)
            finally:
                b0.setflags(write=False)
        if touched.size:
            self.graph_version += 1
        if ops:
            self.opinion_version += 1
        refreshed = self._refresh_for_delta(
            touched_by_candidate, opinions_by_candidate
        )
        return DeltaReport(
            graph_version=self.graph_version,
            opinion_version=self.opinion_version,
            touched_nodes=touched,
            touched_by_candidate=touched_by_candidate,
            opinions_by_candidate=opinions_by_candidate,
            opinion_deltas=opinion_deltas,
            structural=structural,
            edges_added=len(tuple(edges_added)),
            edges_removed=len(tuple(edges_removed)),
            competitor_rows_refreshed=refreshed,
        )

    def note_external_delta(self, report: DeltaReport) -> None:
        """Adopt a delta already applied to this problem's backing arrays.

        Shared-memory ``dm-mp`` workers receive problems whose matrices are
        views over a segment the parent patches in place; the worker must
        not re-run the surgery (renormalization is not idempotent), only
        adopt the versions and invalidate its caches.  Shared cache views
        for touched candidates are *dropped* (not patched) so lazy refills
        recompute from the patched matrices.
        """
        seen: set[int] = set()
        for q in report.touched_by_candidate:
            graph = self.state.graph(q)
            if id(graph) not in seen:
                seen.add(id(graph))
                graph.version += 1
        self.graph_version = report.graph_version
        self.opinion_version = report.opinion_version
        dirty = set(report.touched_by_candidate) | set(report.opinions_by_candidate)
        if self.target in dirty:
            self._base_target = None
            self._base_trajectory = None
            self._seeded_trajectories.clear()
        if dirty - {self.target}:
            self._competitors = None
            self._others_by_user = None

    def _refresh_for_delta(
        self,
        touched_by_candidate: dict[int, np.ndarray],
        opinions_by_candidate: dict[int, np.ndarray],
    ) -> int:
        """Surgical cache refresh; returns competitor rows recomputed."""
        dirty = set(touched_by_candidate) | set(opinions_by_candidate)
        if self.target in dirty:
            self._base_target = None
            self._base_trajectory = None
            self._seeded_trajectories.clear()
        dirty_comps = sorted(dirty - {self.target})
        refreshed = 0
        if dirty_comps and self._competitors is not None:
            others = [x for x in range(self.r) if x != self.target]
            for x in dirty_comps:
                row = others.index(x)
                if x in self.competitor_seeds:
                    b0_x, d_x = self.state.seeded(x, self.competitor_seeds[x])
                else:
                    b0_x = self.state.initial_opinions[x]
                    d_x = self.state.stubbornness[x]
                fresh = fj_evolve(b0_x, d_x, self.state.graph(x), self.horizon)
                self.evolution_steps += self.horizon
                if not self._competitors.flags.writeable:
                    self._competitors = self._competitors.copy()
                self._competitors[row] = fresh
                if self._others_by_user is not None:
                    if not self._others_by_user.flags.writeable:
                        self._others_by_user = self._others_by_user.copy()
                    self._others_by_user[:, row] = fresh
                refreshed += 1
        return refreshed

    def __getstate__(self) -> dict:
        """Pickle support for process fan-out (``--engine dm-mp``).

        Ships the instance and its *shareable* caches — competitor
        opinions and the unseeded base trajectory, which every worker
        would otherwise recompute identically — but drops the
        seeded-trajectory cache: that is per-session warm state (up to
        :data:`SEEDED_TRAJECTORY_CACHE` dense ``(horizon+1, n)`` arrays),
        and worker sessions rebuild their committed trajectories from
        commit broadcasts instead (see :mod:`repro.core.engine_mp`).  The
        pickled size is therefore bounded by the instance's fixed state
        regardless of how many seeded trajectories were evaluated — a
        regression test pins that byte budget.
        """
        state = self.__dict__.copy()
        state["_seeded_trajectories"] = {}
        return state

    #: Cache attributes shipped to workers (shared inputs every worker
    #: would recompute identically); the seeded-trajectory cache is
    #: deliberately absent — see :meth:`__getstate__`.
    _SHAREABLE_CACHES = (
        "_competitors",
        "_others_by_user",
        "_base_target",
        "_base_trajectory",
    )

    def share_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Split the problem into a picklable skeleton and its large arrays.

        The zero-copy transport of :mod:`repro.core.engine_mp` maps the
        arrays into shared memory once per pool and sends only the
        skeleton through the pipe; :meth:`from_shared_arrays` rebuilds an
        equivalent problem around whatever views the transport hands
        back.  Duplicate graphs (candidates sharing one influence matrix)
        are shipped once, and the shareable caches travel exactly as
        :meth:`__getstate__` would ship them.
        """
        state = self.state
        arrays: dict[str, np.ndarray] = {
            "initial_opinions": state.initial_opinions,
            "stubbornness": state.stubbornness,
        }
        graph_ids: dict[int, int] = {}
        graph_of_candidate: list[int] = []
        for graph in state.graphs:
            gid = graph_ids.get(id(graph))
            if gid is None:
                gid = len(graph_ids)
                graph_ids[id(graph)] = gid
                for orient in ("csr", "csc"):
                    matrix = getattr(graph, orient)
                    arrays[f"g{gid}.{orient}.data"] = matrix.data
                    arrays[f"g{gid}.{orient}.indices"] = matrix.indices
                    arrays[f"g{gid}.{orient}.indptr"] = matrix.indptr
            graph_of_candidate.append(gid)
        caches: list[str] = []
        for name in self._SHAREABLE_CACHES:
            value = getattr(self, name)
            if value is not None:
                arrays[f"cache{name}"] = value
                caches.append(name)
        graph_versions = [0] * len(graph_ids)
        for graph in state.graphs:
            graph_versions[graph_ids[id(graph)]] = graph.version
        skeleton = {
            "version": 1,
            "n": state.n,
            "problem_versions": (self.graph_version, self.opinion_version),
            "graph_versions": graph_versions,
            "graph_of_candidate": graph_of_candidate,
            "candidates": state.candidates,
            "target": self.target,
            "horizon": self.horizon,
            "score": self.score,
            "competitor_seeds": self.competitor_seeds,
            "caches": caches,
        }
        return skeleton, arrays

    @classmethod
    def from_shared_arrays(
        cls, skeleton: dict, arrays: dict[str, np.ndarray]
    ) -> "FJVoteProblem":
        """Rebuild a problem from :meth:`share_arrays` output.

        The returned problem's matrices are *views* over the supplied
        arrays (no copies, no re-validation, no CSR→CSC re-derivation),
        so callers backing ``arrays`` with shared memory get a problem
        whose heavy state lives entirely in the mapped segments — the
        caller keeps the mapping alive for the problem's lifetime.
        """
        from scipy import sparse

        from repro.graph.digraph import InfluenceGraph

        n = int(skeleton["n"])
        graphs: dict[int, InfluenceGraph] = {}
        for gid in set(skeleton["graph_of_candidate"]):
            graph = InfluenceGraph.__new__(InfluenceGraph)
            parts = {}
            matrix_kinds = (("csr", sparse.csr_matrix), ("csc", sparse.csc_matrix))
            for orient, kind in matrix_kinds:
                parts[orient] = kind(
                    (
                        arrays[f"g{gid}.{orient}.data"],
                        arrays[f"g{gid}.{orient}.indices"],
                        arrays[f"g{gid}.{orient}.indptr"],
                    ),
                    shape=(n, n),
                    copy=False,
                )
            graph._csr = parts["csr"]
            graph._csc = parts["csc"]
            graph.version = skeleton.get("graph_versions", [0] * (gid + 1))[gid]
            graphs[gid] = graph
        # Bypass CampaignState.__post_init__: the parent already validated
        # (and clipped) these arrays, and re-validating would copy them —
        # ``check_opinions`` clips — where a view must stay a view.
        state = CampaignState.__new__(CampaignState)
        object.__setattr__(
            state,
            "graphs",
            tuple(graphs[g] for g in skeleton["graph_of_candidate"]),
        )
        for field, key in (
            ("initial_opinions", "initial_opinions"),
            ("stubbornness", "stubbornness"),
        ):
            view = arrays[key]
            try:
                view.setflags(write=False)
            except ValueError:  # pragma: no cover - non-owning exotic view
                pass
            object.__setattr__(state, field, view)
        object.__setattr__(state, "candidates", tuple(skeleton["candidates"]))
        problem = cls(
            state,
            skeleton["target"],
            skeleton["horizon"],
            skeleton["score"],
            competitor_seeds=skeleton["competitor_seeds"],
        )
        for name in skeleton["caches"]:
            setattr(problem, name, arrays[f"cache{name}"])
        versions = skeleton.get("problem_versions")
        if versions is not None:
            problem.graph_version, problem.opinion_version = versions
        return problem

    def full_opinions(self, seeds: np.ndarray | tuple = ()) -> np.ndarray:
        """Full ``(r, n)`` horizon opinion matrix with ``seeds`` for the target."""
        return self.full_opinions_from_target(self.target_opinions(seeds))

    def full_opinions_from_target(self, target_row: np.ndarray) -> np.ndarray:
        """``(r, n)`` horizon opinions from a precomputed target row.

        Competitor rows come from the shared cache; only the target row is
        caller-supplied.  This is how selection sessions turn a warm-started
        horizon row into a full voting profile without an FJ re-evolution.
        """
        competitors = self.competitor_opinions()
        out = np.empty((self.r, self.n), dtype=np.float64)
        out[self.target] = target_row
        others = [x for x in range(self.r) if x != self.target]
        for row, x in enumerate(others):
            out[x] = competitors[row]
        return out

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def objective(self, seeds: np.ndarray | tuple = ()) -> float:
        """``F(B(t)[S], c_q)`` for seed set ``seeds``."""
        if isinstance(self.score, SeparableScore):
            values = self.target_opinions(seeds)
            return float(self.score.contributions(values, self.others_by_user()).sum())
        return float(self.score.evaluate(self.full_opinions(seeds), self.target))

    def all_scores(self, seeds: np.ndarray | tuple = ()) -> np.ndarray:
        """Scores of all candidates with ``seeds`` applied to the target."""
        return score_all_candidates(self.full_opinions(seeds), self.score)

    def target_wins(self, seeds: np.ndarray | tuple = ()) -> bool:
        """Problem-2 winning criterion: strict score maximum for the target."""
        return is_strict_winner(self.full_opinions(seeds), self.score, self.target)

    def target_wins_from_row(self, target_row: np.ndarray) -> bool:
        """Winning criterion from a precomputed target horizon row.

        Used by warm-started sessions whose prefix probes already hold the
        seeded horizon opinions (see ``SelectionSession.prefix_wins``).
        """
        return is_strict_winner(
            self.full_opinions_from_target(target_row), self.score, self.target
        )

    def with_score(self, score: VotingScore) -> "FJVoteProblem":
        """A copy of the problem with a different scoring function.

        Competitor opinion caches are shared: they depend only on the state,
        horizon, and competitor seeds, not on the score.
        """
        clone = FJVoteProblem(
            self.state,
            self.target,
            self.horizon,
            score,
            competitor_seeds=self.competitor_seeds,
        )
        clone._competitors = self._competitors
        clone._others_by_user = self._others_by_user
        clone._base_target = self._base_target
        clone._base_trajectory = self._base_trajectory
        clone._seeded_trajectories = self._seeded_trajectories
        clone.graph_version = self.graph_version
        clone.opinion_version = self.opinion_version
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FJVoteProblem(target={self.target}, horizon={self.horizon}, "
            f"score={self.score.name}, n={self.n}, r={self.r})"
        )
