"""Fig. 11: expected influence spread (IC/LT) of RW seeds vs IMM seeds.

Expected shape (paper, Twitter Mask): IMM wins on its home metric, but the
RW seeds chosen for the cumulative score achieve over ~80% of IMM's spread —
the voting-based seeds are not bad solutions for classic influence either.
"""


from benchmarks.conftest import run_once
from repro.eval.experiments import eis_experiment
from repro.eval.reporting import format_series

KS = [5, 10, 20]


def test_fig11_eis(benchmark, mask_ds, save_result):
    out = run_once(
        benchmark,
        lambda: eis_experiment(
            mask_ds, KS, mc_runs=60, rng=29, rw_kwargs={"lambda_cap": 32}
        ),
    )
    text = []
    for model in ("ic", "lt"):
        text.append(f"[{model.upper()} diffusion]")
        text.append(format_series("k", KS, out[model]))
    save_result("fig11_eis", "\n".join(text))
    for model in ("ic", "lt"):
        imm_curve = out[model][f"imm-{model}"]
        cum_curve = out[model]["rw-cumulative"]
        # RW-cumulative seeds achieve a large fraction of IMM's spread.
        for rw_v, imm_v in zip(cum_curve, imm_curve):
            assert rw_v >= 0.5 * imm_v, f"RW spread collapsed under {model}"
