"""Method registry and the common evaluation protocol of §VIII-A.

All methods differ *only* in seed selection; once seeds are chosen, every
method is evaluated in the same multi-campaign FJ setting with the same
voting score, via :meth:`FJVoteProblem.objective`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.centrality import degree_select, pagerank_select, rwr_select
from repro.baselines.gedt import gedt_select
from repro.baselines.imm import imm
from repro.core.engine import ObjectiveEngine, make_engine, spec_is_exact_dm
from repro.core.greedy import greedy_dm
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import random_walk_select
from repro.core.sketch import sketch_select
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

#: Selection methods of §VIII-A: ours (DM, RW, RS) plus baselines.
METHOD_NAMES = ("dm", "rw", "rs", "gedt", "ic", "lt", "pr", "rwr", "dc", "random")


def select_seeds(
    method: str,
    problem: FJVoteProblem,
    k: int,
    rng: int | np.random.Generator | None = None,
    *,
    engine: "str | ObjectiveEngine | None" = None,
    **kwargs: object,
) -> np.ndarray:
    """Select ``k`` seeds with the named method.

    ``kwargs`` are forwarded to the underlying selector (e.g. ``lambda_cap``
    for RW, ``theta`` for RS, ``epsilon`` for IMM).  ``engine`` picks the
    objective-evaluation backend for the greedy-based methods (a spec name
    from :data:`repro.core.engine.ENGINE_NAMES`, or — for ``dm`` — a
    prebuilt :class:`~repro.core.engine.ObjectiveEngine` instance whose
    sessions then share the problem's cached trajectories across budgets)
    and is ignored by the others, which carry their own estimators.
    """
    rng = ensure_rng(rng)
    if method == "dm":
        return greedy_dm(problem, k, engine=engine, rng=rng).seeds
    if not isinstance(engine, (str, type(None))):
        raise TypeError(
            f"method {method!r} accepts only engine spec names, not instances"
        )
    if method == "rw":
        return random_walk_select(problem, k, rng=rng, **kwargs).seeds
    if method == "rs":
        return sketch_select(problem, k, rng=rng, **kwargs).seeds
    if method == "gedt":
        return gedt_select(problem, k, engine=engine, rng=rng)
    if method in ("ic", "lt"):
        graph = problem.state.graph(problem.target)
        return imm(graph, k, model=method, rng=rng, **kwargs).seeds
    if method == "pr":
        return pagerank_select(problem, k, **kwargs)
    if method == "rwr":
        return rwr_select(problem, k, **kwargs)
    if method == "dc":
        return degree_select(problem, k)
    if method == "random":
        return rng.choice(problem.n, size=k, replace=False).astype(np.int64)
    raise ValueError(f"unknown method {method!r}; expected one of {METHOD_NAMES}")


@dataclass
class MethodRun:
    """One (method, k) cell of an effectiveness/efficiency figure."""

    method: str
    k: int
    score_value: float
    seconds: float
    seeds: np.ndarray


def run_methods(
    problem: FJVoteProblem,
    ks: Sequence[int],
    methods: Sequence[str],
    rng: int | np.random.Generator | None = None,
    *,
    method_kwargs: dict[str, dict[str, object]] | None = None,
    engine: str | None = None,
) -> list[MethodRun]:
    """Run every (method, k) combination; timing covers seed selection only.

    Competitor opinions are pre-computed before timing starts: they are a
    shared input to all methods, as in the paper's setup, and the exact DM
    engine (a shared input too — it only wraps the problem) is built once
    per method sweep so every budget's selection session starts from the
    same cached trajectories.  ``engine`` selects the evaluation backend
    for the greedy-based methods.
    """
    rng = ensure_rng(rng)
    method_kwargs = method_kwargs or {}
    problem.others_by_user()  # warm the shared cache outside the timers
    runs: list[MethodRun] = []
    for method in methods:
        kwargs = dict(method_kwargs.get(method, {}))
        method_engine: str | ObjectiveEngine | None = engine
        if method == "dm" and spec_is_exact_dm(engine):
            # Exact engines are deterministic shared inputs: build once per
            # method sweep so every budget's session reuses the cached
            # trajectories (and, for dm-mp, one worker pool serves the
            # whole sweep instead of spinning up per budget).
            method_engine = make_engine(engine, problem)
        try:
            for k in ks:
                with Timer() as timer:
                    seeds = select_seeds(
                        method, problem, k, rng, engine=method_engine, **kwargs
                    )
                runs.append(
                    MethodRun(
                        method=method,
                        k=int(k),
                        score_value=problem.objective(seeds),
                        seconds=timer.elapsed,
                        seeds=seeds,
                    )
                )
        finally:
            if isinstance(method_engine, ObjectiveEngine) and (
                method_engine is not engine
            ):
                method_engine.close()
    return runs
