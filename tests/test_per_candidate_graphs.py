"""End-to-end tests with distinct per-candidate influence matrices (§II-A).

The paper allows each candidate its own column-stochastic ``W_q`` (only the
node set is shared).  Most datasets share one matrix; these tests exercise
the algorithms with genuinely different graphs per candidate.
"""

import numpy as np
import pytest

from repro.core.greedy import greedy_dm
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import random_walk_select
from repro.core.sandwich import sandwich_select
from repro.core.sketch import sketch_select
from repro.datasets.yelp import yelp_like
from repro.opinion.fj import fj_evolve
from repro.voting.scores import CumulativeScore, PluralityScore
from tests.conftest import random_instance


@pytest.fixture
def multi_graph_state():
    return random_instance(n=12, r=3, seed=33, shared_graph=False)


def test_distinct_graphs_really_distinct(multi_graph_state):
    w0 = multi_graph_state.graph(0).csr.toarray()
    w1 = multi_graph_state.graph(1).csr.toarray()
    assert not np.allclose(w0, w1)


def test_full_opinions_use_each_candidates_graph(multi_graph_state):
    problem = FJVoteProblem(multi_graph_state, 0, 4, PluralityScore())
    full = problem.full_opinions(())
    for q in range(3):
        expected = fj_evolve(
            multi_graph_state.initial_opinions[q],
            multi_graph_state.stubbornness[q],
            multi_graph_state.graph(q),
            4,
        )
        np.testing.assert_allclose(full[q], expected)


def test_greedy_dm_with_distinct_graphs(multi_graph_state):
    problem = FJVoteProblem(multi_graph_state, 1, 3, PluralityScore())
    result = greedy_dm(problem, 2)
    assert result.objective >= problem.objective(()) - 1e-9


def test_rw_and_rs_walk_the_target_graph(multi_graph_state):
    problem = FJVoteProblem(multi_graph_state, 2, 3, CumulativeScore())
    rw = random_walk_select(problem, 2, rng=1, walks_per_node=32)
    rs = sketch_select(problem, 2, theta=2000, rng=2)
    base = problem.objective(())
    assert rw.exact_objective >= base - 1e-9
    assert rs.exact_objective >= base - 1e-9


def test_sandwich_with_distinct_graphs(multi_graph_state):
    problem = FJVoteProblem(multi_graph_state, 0, 2, PluralityScore())
    result = sandwich_select(problem, 2, method="dm")
    assert 0 <= result.sandwich_ratio <= 1 + 1e-9


def test_yelp_per_candidate_weights():
    ds = yelp_like(n=120, r=3, rng=5, per_candidate_weights=True)
    w_target = ds.state.graph(ds.target).csr.toarray()
    w_other = ds.state.graph(0).csr.toarray()
    assert not np.allclose(w_target, w_other)
    # Every per-candidate matrix is still column-stochastic.
    for q in range(3):
        sums = np.asarray(ds.state.graph(q).csr.sum(axis=0)).ravel()
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)
    # The full pipeline still runs.
    problem = ds.problem(PluralityScore(), horizon=3)
    result = greedy_dm(problem, 2)
    assert result.seeds.size == 2
