"""Convergence diagnostics for FJ diffusion.

Implements the oblivious-node notion from §II-A (non-stubborn nodes not
reachable from any stubborn node — the obstruction to FJ convergence) and
the opinion-change statistic plotted in the paper's Fig. 18 (Appendix B).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.opinion.fj import fj_step


def oblivious_nodes(graph: InfluenceGraph, stubbornness: np.ndarray) -> np.ndarray:
    """Nodes that are non-stubborn and unreachable from any stubborn node.

    Influence travels along directed edges ``i -> j`` (``w[i, j] > 0``), so a
    node is "reached" by a stubborn node via forward BFS.  Self-loops do not
    count as reachability from a stubborn node unless the node itself is
    stubborn.
    """
    d = np.asarray(stubbornness, dtype=np.float64)
    if d.shape != (graph.n,):
        raise ValueError(f"stubbornness must have shape ({graph.n},)")
    stubborn = np.where(d > 0)[0]
    reached = np.zeros(graph.n, dtype=bool)
    reached[stubborn] = True
    queue = deque(int(v) for v in stubborn)
    while queue:
        u = queue.popleft()
        targets, _ = graph.out_neighbors(u)
        for v in targets:
            if not reached[v]:
                reached[v] = True
                queue.append(int(v))
    return np.where(~reached)[0]


def fraction_changing(
    b0: np.ndarray,
    d: np.ndarray,
    graph: InfluenceGraph,
    horizon: int,
    tolerance_pct: float,
) -> np.ndarray:
    """Fraction of users whose opinion changes by more than ``Δ%`` per step.

    Reproduces Fig. 18: entry ``t-1`` of the returned array is the fraction
    of nodes ``v`` with ``|b_t(v) - b_{t-1}(v)| > (Δ/100) * b_{t-1}(v)`` for
    ``t = 1..horizon``.
    """
    if tolerance_pct < 0:
        raise ValueError("tolerance_pct must be non-negative")
    b_prev = np.array(b0, dtype=np.float64)
    fractions = np.empty(horizon, dtype=np.float64)
    for step in range(horizon):
        b_cur = fj_step(b_prev, b0, d, graph)
        changed = np.abs(b_cur - b_prev) > (tolerance_pct / 100.0) * b_prev
        fractions[step] = changed.mean() if changed.size else 0.0
        b_prev = b_cur
    return fractions


def time_to_convergence(
    b0: np.ndarray,
    d: np.ndarray,
    graph: InfluenceGraph,
    *,
    tol: float = 1e-8,
    max_t: int = 1_000,
) -> int | None:
    """First timestamp at which the max opinion change drops below ``tol``.

    Returns ``None`` when no such timestamp exists within ``max_t`` steps.
    """
    b_prev = np.array(b0, dtype=np.float64)
    for step in range(1, max_t + 1):
        b_cur = fj_step(b_prev, b0, d, graph)
        if np.max(np.abs(b_cur - b_prev)) < tol:
            return step
        b_prev = b_cur
    return None
