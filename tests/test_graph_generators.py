"""Tests for the from-scratch graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    erdos_renyi_edges,
    planted_partition_edges,
    power_law_edges,
    preferential_attachment_edges,
    ring_lattice_edges,
    watts_strogatz_edges,
)


def _assert_simple(n, src, dst):
    assert src.shape == dst.shape
    assert np.all(src != dst), "self loops present"
    keys = src * n + dst
    assert np.unique(keys).size == keys.size, "duplicate edges present"
    if src.size:
        assert src.min() >= 0 and src.max() < n
        assert dst.min() >= 0 and dst.max() < n


def test_erdos_renyi_simple_and_sized():
    src, dst = erdos_renyi_edges(50, 0.1, rng=0)
    _assert_simple(50, src, dst)
    # Expected edge count 50*49*0.1 = 245; very loose band.
    assert 150 < src.size < 350


def test_erdos_renyi_extremes():
    src, dst = erdos_renyi_edges(10, 0.0, rng=1)
    assert src.size == 0
    src, dst = erdos_renyi_edges(5, 1.0, rng=1)
    assert src.size == 20  # complete digraph without self-loops


def test_erdos_renyi_validation():
    with pytest.raises(ValueError):
        erdos_renyi_edges(5, 1.5)
    with pytest.raises(ValueError):
        erdos_renyi_edges(-1, 0.5)


def test_preferential_attachment_bidirectional_and_skewed():
    src, dst = preferential_attachment_edges(300, 3, rng=2)
    _assert_simple(300, src, dst)
    pairs = set(zip(src.tolist(), dst.tolist()))
    assert all((b, a) in pairs for a, b in pairs), "not symmetric"
    degrees = np.bincount(src, minlength=300)
    assert degrees.max() > 4 * max(np.median(degrees), 1), "no hubs"


def test_preferential_attachment_validation():
    with pytest.raises(ValueError):
        preferential_attachment_edges(5, 0)
    with pytest.raises(ValueError):
        preferential_attachment_edges(3, 3)


def test_ring_lattice():
    src, dst = ring_lattice_edges(6, 2)
    _assert_simple(6, src, dst)
    assert src.size == 12
    pairs = set(zip(src.tolist(), dst.tolist()))
    assert (0, 1) in pairs and (0, 2) in pairs and (5, 0) in pairs


def test_watts_strogatz_rewiring():
    src, dst = watts_strogatz_edges(100, 2, 0.0, rng=3)
    base_size = src.size
    src2, dst2 = watts_strogatz_edges(100, 2, 0.5, rng=3)
    _assert_simple(100, src2, dst2)
    assert src2.size >= base_size * 0.8


def test_planted_partition_community_bias():
    src, dst, member = planted_partition_edges(200, 4, 0.3, 0.01, rng=4)
    _assert_simple(200, src, dst)
    assert member.shape == (200,)
    same = member[src] == member[dst]
    assert same.mean() > 0.5, "no community structure"


def test_power_law_heavy_tail():
    src, dst = power_law_edges(500, exponent=2.2, min_degree=1, rng=5)
    _assert_simple(500, src, dst)
    out_deg = np.bincount(src, minlength=500)
    assert out_deg.max() >= 5 * max(np.median(out_deg), 1)


def test_power_law_validation():
    with pytest.raises(ValueError):
        power_law_edges(10, exponent=1.0)
    with pytest.raises(ValueError):
        power_law_edges(10, min_degree=0)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 40), p=st.floats(0, 0.5), seed=st.integers(0, 1000))
def test_property_er_edges_always_simple(n, p, seed):
    src, dst = erdos_renyi_edges(n, p, rng=seed)
    _assert_simple(n, src, dst)
