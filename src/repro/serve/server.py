"""The asyncio front end: connections, the dispatcher, signal shutdown.

One :class:`QueryServer` owns a stdlib ``asyncio.start_server`` listener
and a **single dispatcher task** that drains a shared request queue.
The drain loop *is* the coalescing window: the dispatcher takes whatever
has accumulated (optionally sleeping ``batch_window`` seconds after the
first request), hands the whole drain to
:meth:`~repro.serve.batcher.CoalescingBatcher.execute` in a worker
thread, and resolves each request's future with its response.  While a
round is in flight new requests pile up in the queue, so concurrent
clients coalesce naturally even with ``batch_window=0``.

Connections are pipelined: each line spawns a responder task, responses
go out in completion order (matched by ``id``) under a per-connection
write lock.  Protocol failures answer with a structured error line and
keep the connection open.

Overload protection happens at the queue boundary: a ``queue_cap``
bounds the dispatch queue and admissions past it answer a structured
``overloaded`` error immediately (``ServeStats.requests_shed``), and
every request carries a deadline (its own ``deadline_ms`` or the
server's ``request_timeout_ms`` default) that the dispatcher checks when
it drains — an expired request answers ``deadline-exceeded`` without
costing an engine round.  A saturated server stays responsive: it sheds
instead of buffering without bound.

Shutdown (``aclose`` — what the CLI's SIGTERM/SIGINT handlers trigger)
stops the listener and then, with ``drain=True`` (the first signal),
runs the queue dry before closing; a second signal — or plain
``aclose()`` — fails queued requests instead.  Either way the hub close
routes every ``dm-mp`` pool through
:func:`repro.utils.workers.stop_worker_pool` and unlinks its shared
memory — a killed server never leaks shm segments (the crash tests
assert this for SIGTERM and, via the resource tracker, SIGKILL).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.core import faults
from repro.serve.batcher import CoalescingBatcher, EngineHub, ServeStats
from repro.serve.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    decode_line,
    encode,
    error_response,
    parse_request,
)

#: Queue marker that tells the dispatcher to run the queue dry and exit
#: (graceful drain); everything enqueued before it is still answered.
_DRAIN = object()


class QueryServer:
    """Serve one :class:`~repro.serve.batcher.EngineHub` over TCP.

    Parameters
    ----------
    hub:
        The warm engines (the server owns it after ``start``: ``aclose``
        closes it).
    host / port:
        Bind address; port 0 picks a free port (``start`` returns the
        bound address).
    batch_window:
        Extra seconds the dispatcher waits after the first request of a
        batch before draining.  0 (default) still coalesces whatever is
        queued — including everything that arrived while the previous
        round was in flight.
    queue_cap:
        Bound on queued-but-undispatched requests; admissions past it
        are shed with a structured ``overloaded`` error instead of
        buffering without bound.  ``None`` (default) leaves the queue
        unbounded.
    request_timeout_ms:
        Default per-request deadline; a request still queued when it
        expires answers ``deadline-exceeded`` instead of holding its
        connection forever.  A request's own ``deadline_ms`` overrides
        it.  ``None`` (default) applies no deadline.
    """

    def __init__(
        self,
        hub: EngineHub,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.0,
        queue_cap: int | None = None,
        request_timeout_ms: float | None = None,
        stats: ServeStats | None = None,
    ) -> None:
        if queue_cap is not None and int(queue_cap) < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        if request_timeout_ms is not None and not request_timeout_ms > 0:
            raise ValueError(
                f"request_timeout_ms must be > 0, got {request_timeout_ms}"
            )
        self.hub = hub
        self.batcher = CoalescingBatcher(hub, stats)
        self.host = host
        self.port = int(port)
        self.batch_window = float(batch_window)
        self.queue_cap = None if queue_cap is None else int(queue_cap)
        self.request_timeout_ms = (
            None if request_timeout_ms is None else float(request_timeout_ms)
        )
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._queue: asyncio.Queue[Any] = asyncio.Queue(
            maxsize=0 if self.queue_cap is None else self.queue_cap
        )
        self._accepted = 0
        self._closed = False

    @property
    def stats(self) -> ServeStats:
        return self.batcher.stats

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind, launch the dispatcher, warm the pools; returns the
        bound ``(host, port)``."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.hub.warm)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES + 2,
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def aclose(self, *, drain: bool = False) -> None:
        """Stop accepting and release the hub (idempotent).

        With ``drain`` the dispatcher first runs the queue dry — every
        request admitted before the close is answered — while new
        admissions are shed with ``overloaded``; without it queued
        requests fail with an ``internal`` shutdown error.
        """
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._dispatcher is not None:
            await self._queue.put(_DRAIN)
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        while not self._queue.empty():
            entry = self._queue.get_nowait()
            if entry is _DRAIN:
                continue
            request, future, _ = entry
            if not future.done():
                future.set_result(
                    error_response(
                        request.id, ERROR_INTERNAL, "server shutting down"
                    )
                )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.hub.close)

    def abort_drain(self) -> None:
        """Force a drain in progress to stop (the second SIGTERM/SIGINT):
        cancels the dispatcher so ``aclose(drain=True)`` falls through to
        failing whatever is still queued."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()

    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        draining = False
        while not draining:
            first = await self._queue.get()
            if first is _DRAIN:
                return
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            drained = [first]
            while True:
                try:
                    entry = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if entry is _DRAIN:
                    draining = True
                    break
                drained.append(entry)
            # Expired deadlines answer here, before any engine work: a
            # request that waited out its patience budget in the queue
            # must not consume a round its client stopped waiting for.
            now = loop.time()
            batch = []
            for request, future, deadline in drained:
                if deadline is not None and now > deadline:
                    self.stats.deadlines_exceeded += 1
                    if not future.done():
                        future.set_result(
                            error_response(
                                request.id,
                                ERROR_DEADLINE_EXCEEDED,
                                "request deadline expired in the dispatch "
                                "queue",
                            )
                        )
                else:
                    batch.append((request, future))
            if not batch:
                continue
            requests = [request for request, _ in batch]
            try:
                responses = await loop.run_in_executor(
                    None, self.batcher.execute, requests
                )
            except Exception as exc:  # noqa: BLE001 - keep serving
                for request, future in batch:
                    if not future.done():
                        future.set_result(
                            error_response(
                                request.id,
                                ERROR_INTERNAL,
                                f"{type(exc).__name__}: {exc}",
                            )
                        )
                continue
            for (_, future), response in zip(batch, responses):
                if not future.done():
                    future.set_result(response)

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()
        responders: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Line longer than the stream limit: the framing is
                    # unrecoverable, answer once and drop the connection.
                    await self._write(
                        writer,
                        lock,
                        error_response(
                            None,
                            ERROR_BAD_REQUEST,
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                request_id: Any = None
                try:
                    payload = decode_line(line)
                    request_id = payload.get("id")
                    request = parse_request(payload)
                except ProtocolError as exc:
                    self.stats.errors += 1
                    await self._write(
                        writer,
                        lock,
                        error_response(request_id, exc.code, exc.message),
                    )
                    continue
                future: asyncio.Future = (
                    asyncio.get_running_loop().create_future()
                )
                self._admit(request, future)
                task = asyncio.create_task(
                    self._respond(writer, lock, future)
                )
                responders.add(task)
                task.add_done_callback(responders.discard)
        finally:
            if responders:
                await asyncio.gather(*responders, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _admit(self, request: Request, future: asyncio.Future) -> None:
        """Enqueue one parsed request — or shed it, answering immediately.

        Shedding (queue at ``queue_cap``, shutdown in progress, or an
        injected ``serve-drop`` fault) resolves the future with a
        structured ``overloaded`` error without touching the dispatcher,
        so a saturated server answers in admission time, not queue time.
        """
        arrival = self._accepted
        self._accepted += 1
        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.request_timeout_ms
        deadline = (
            None
            if deadline_ms is None
            else asyncio.get_running_loop().time() + deadline_ms / 1000.0
        )
        if self._closed:
            self._shed(request, future, "server is shutting down")
            return
        if faults.maybe_fail("serve-drop", request=arrival) is not None:
            self._shed(request, future, "dispatch queue is full")
            return
        try:
            self._queue.put_nowait((request, future, deadline))
        except asyncio.QueueFull:
            self._shed(request, future, "dispatch queue is full")

    def _shed(
        self, request: Request, future: asyncio.Future, message: str
    ) -> None:
        self.stats.requests_shed += 1
        if not future.done():
            future.set_result(
                error_response(request.id, ERROR_OVERLOADED, message)
            )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        future: asyncio.Future,
    ) -> None:
        response = await future
        await self._write(writer, lock, response)

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter, lock: asyncio.Lock, response: dict
    ) -> None:
        async with lock:
            try:
                writer.write(encode(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; nothing to tell it


def run_server(
    hub: EngineHub,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    batch_window: float = 0.0,
    queue_cap: int | None = None,
    request_timeout_ms: float | None = None,
    on_ready: Callable[[str, int], None] | None = None,
) -> ServeStats:
    """Blocking entry point: serve until SIGTERM/SIGINT, then clean up.

    The signal handlers set an event rather than raising, so shutdown
    always runs :meth:`QueryServer.aclose` — worker pools are stopped via
    ``stop_worker_pool`` and shm segments unlinked even when the process
    is terminated externally.  The first signal drains gracefully (stops
    accepting, answers everything already queued); a second signal cuts
    the drain short and fails what is left.  Returns the final serving
    counters.
    """
    import signal

    stats = ServeStats()

    async def main() -> None:
        server = QueryServer(
            hub,
            host=host,
            port=port,
            batch_window=batch_window,
            queue_cap=queue_cap,
            request_timeout_ms=request_timeout_ms,
            stats=stats,
        )
        bound_host, bound_port = await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        def on_signal() -> None:
            if stop.is_set():
                server.abort_drain()
            stop.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, on_signal)
            except NotImplementedError:  # pragma: no cover - non-posix
                pass
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        try:
            await stop.wait()
        finally:
            await server.aclose(drain=True)

    asyncio.run(main())
    return stats
