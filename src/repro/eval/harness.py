"""Method registry and the common evaluation protocol of §VIII-A.

All methods differ *only* in seed selection; once seeds are chosen, every
method is evaluated in the same multi-campaign FJ setting with the same
voting score, via :meth:`FJVoteProblem.objective`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.centrality import degree_select, pagerank_select, rwr_select
from repro.baselines.gedt import gedt_select
from repro.baselines.imm import imm
from repro.core.engine import (
    EngineSpec,
    ObjectiveEngine,
    make_engine,
    spec_is_exact_dm,
)
from repro.core.greedy import greedy_dm
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import random_walk_select
from repro.core.sketch import sketch_select
from repro.core.walk_store import WalkStore
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

#: Selection methods of §VIII-A: ours (DM, RW, RS) plus baselines.
METHOD_NAMES = ("dm", "rw", "rs", "gedt", "ic", "lt", "pr", "rwr", "dc", "random")


def _spec_reuses_state(engine: "str | ObjectiveEngine | None") -> bool:
    """True for spec strings worth building once per method sweep.

    Exact DM engines are deterministic shared inputs; ``rw-store`` engines
    carry the shared walk store whose whole point is reuse across budgets.
    """
    if spec_is_exact_dm(engine):
        return True
    if not isinstance(engine, (str, EngineSpec)):
        return False
    try:
        name = EngineSpec.parse(engine).name
    except ValueError:
        return False
    return name == "rw-store"


def select_seeds(
    method: str,
    problem: FJVoteProblem,
    k: int,
    rng: int | np.random.Generator | None = None,
    *,
    engine: "str | EngineSpec | ObjectiveEngine | None" = None,
    store: WalkStore | None = None,
    **kwargs: object,
) -> np.ndarray:
    """Select ``k`` seeds with the named method.

    ``kwargs`` are forwarded to the underlying selector (e.g. ``lambda_cap``
    for RW, ``theta`` for RS, ``epsilon`` for IMM).  ``engine`` picks the
    objective-evaluation backend for the greedy-based methods (a spec name
    from :data:`repro.core.engine.ENGINE_NAMES`, or — for ``dm`` — a
    prebuilt :class:`~repro.core.engine.ObjectiveEngine` instance whose
    sessions then share the problem's cached trajectories across budgets)
    and is ignored by the others, which carry their own estimators.

    ``store`` (a :class:`~repro.core.walk_store.WalkStore`) is shared by
    the sampling methods: RW and RS draw their walk pools from it and the
    IC/LT baselines draw their RR sets, so a sweep over budgets reuses one
    persistent sample instead of regenerating per call.
    """
    rng = ensure_rng(rng)
    if isinstance(engine, EngineSpec):
        engine = engine.canonical()
    if store is not None:
        store.require_problem(problem)
    if method == "dm":
        return greedy_dm(problem, k, engine=engine, rng=rng).seeds
    if not isinstance(engine, (str, type(None))):
        raise TypeError(
            f"method {method!r} accepts only engine spec names, not instances"
        )
    if method == "rw":
        return random_walk_select(problem, k, rng=rng, store=store, **kwargs).seeds
    if method == "rs":
        return sketch_select(problem, k, rng=rng, store=store, **kwargs).seeds
    if method == "gedt":
        return gedt_select(problem, k, engine=engine, rng=rng)
    if method in ("ic", "lt"):
        graph = problem.state.graph(problem.target)
        rr_pool = None if store is None else store.rr_pool(problem.target, method)
        return imm(graph, k, model=method, rng=rng, rr_pool=rr_pool, **kwargs).seeds
    if method == "pr":
        return pagerank_select(problem, k, **kwargs)
    if method == "rwr":
        return rwr_select(problem, k, **kwargs)
    if method == "dc":
        return degree_select(problem, k)
    if method == "random":
        return rng.choice(problem.n, size=k, replace=False).astype(np.int64)
    raise ValueError(f"unknown method {method!r}; expected one of {METHOD_NAMES}")


@dataclass
class MethodRun:
    """One (method, k) cell of an effectiveness/efficiency figure."""

    method: str
    k: int
    score_value: float
    seconds: float
    seeds: np.ndarray


def run_methods(
    problem: FJVoteProblem,
    ks: Sequence[int],
    methods: Sequence[str],
    rng: int | np.random.Generator | None = None,
    *,
    method_kwargs: dict[str, dict[str, object]] | None = None,
    engine: "str | EngineSpec | None" = None,
    store: WalkStore | None = None,
    store_dir: "str | None" = None,
) -> list[MethodRun]:
    """Run every (method, k) combination; timing covers seed selection only.

    Competitor opinions are pre-computed before timing starts: they are a
    shared input to all methods, as in the paper's setup, and the exact DM
    engine (a shared input too — it only wraps the problem) is built once
    per method sweep so every budget's selection session starts from the
    same cached trajectories.  ``engine`` selects the evaluation backend
    for the greedy-based methods; ``store`` hands the sampling methods
    (RW, RS, IC, LT) one shared :class:`~repro.core.walk_store.WalkStore`
    so every budget extends the same walk/RR-set pools.  ``store_dir``
    (no effect when ``store`` is supplied) builds that shared store as a
    persistent memory-mapped one rooted at the directory, with a fixed
    seed so re-running the sweep re-opens the same pools and regenerates
    nothing.
    """
    rng = ensure_rng(rng)
    if isinstance(engine, EngineSpec):
        engine = engine.canonical()
    method_kwargs = method_kwargs or {}
    if store is None and store_dir is not None:
        from repro.core.walk_store import store_for_problem

        # The shared store must agree with whatever the engine spec pins:
        # its shard count (a parameterized ``rw-store:<S>``), and — when
        # the spec also carries ``:mmap=<DIR>`` — the same directory, or
        # the engine build below would reject the pairing.
        shards = 1
        if isinstance(engine, str):
            try:
                spec = EngineSpec.parse(engine)
            except ValueError:
                spec = None
            if spec is not None and spec.name == "rw-store":
                shards = int(spec.shards or 1)
                if spec.store_dir is not None and str(spec.store_dir) != str(
                    store_dir
                ):
                    raise ValueError(
                        f"store_dir={store_dir!r} conflicts with the engine "
                        f"spec's mmap directory {spec.store_dir!r}"
                    )
        store = store_for_problem(problem, store_dir=store_dir, shards=shards)
    problem.others_by_user()  # warm the shared cache outside the timers
    runs: list[MethodRun] = []
    for method in methods:
        kwargs = dict(method_kwargs.get(method, {}))
        method_engine: str | ObjectiveEngine | None = engine
        if method == "dm" and _spec_reuses_state(engine):
            # Engines with reusable state are shared inputs: build once per
            # method sweep so every budget's session reuses the cached
            # trajectories (dm-batched), one worker pool (dm-mp), or one
            # walk store (rw-store) instead of rebuilding per budget.  An
            # rw-store engine additionally draws from the caller's shared
            # store, so the dm sweep and the rw/rs methods sample one pool.
            engine_kwargs: dict[str, object] = {}
            if store is not None and not spec_is_exact_dm(engine):
                engine_kwargs["store"] = store
            method_engine = make_engine(engine, problem, rng=rng, **engine_kwargs)
        try:
            for k in ks:
                with Timer() as timer:
                    seeds = select_seeds(
                        method,
                        problem,
                        k,
                        rng,
                        engine=method_engine,
                        store=store,
                        **kwargs,
                    )
                runs.append(
                    MethodRun(
                        method=method,
                        k=int(k),
                        score_value=problem.objective(seeds),
                        seconds=timer.elapsed,
                        seeds=seeds,
                    )
                )
        finally:
            if isinstance(method_engine, ObjectiveEngine) and (
                method_engine is not engine
            ):
                method_engine.close()
    return runs
