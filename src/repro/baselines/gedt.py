"""GED-T: the greedy opinion maximizer of Gionis et al. [SDM'13], adapted.

The original algorithm selects seeds maximizing the *sum of expressed
opinions at the Nash equilibrium* of a single campaign.  The paper adapts it
to a finite horizon ("GED-T"), at which point its objective coincides with
the cumulative score — so GED-T and the DM greedy agree on the cumulative
score (as Fig. 8 shows) while GED-T underperforms on the rank-based scores
it does not optimize.
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy import greedy_dm
from repro.core.problem import FJVoteProblem
from repro.voting.scores import CumulativeScore


def gedt_select(
    problem: FJVoteProblem,
    k: int,
    *,
    engine: object = None,
    rng: object = None,
) -> np.ndarray:
    """Seeds of the finite-horizon Gionis et al. greedy (cumulative objective).

    The returned seed set is then *evaluated* under whichever score the
    surrounding experiment uses, exactly like the paper's baseline protocol
    ("all baselines differ only in the seed selection methods").  ``engine``
    picks the evaluation backend for the inner greedy (see
    :func:`repro.core.engine.make_engine`); note an engine instance is
    bound to *its* problem's score, so only spec names are accepted here —
    the cumulative clone gets its own engine and selection session, whose
    CELF rounds warm-start against the clone's committed trajectory.
    ``rng`` seeds the stochastic engine specs.
    """
    if engine is not None and not isinstance(engine, str):
        raise TypeError("gedt_select accepts only engine spec names, not instances")
    cumulative = problem.with_score(CumulativeScore())
    return greedy_dm(cumulative, k, engine=engine, rng=rng).seeds


def ged_equilibrium_select(problem: FJVoteProblem, k: int) -> np.ndarray:
    """GED-EQ: the *original* Gionis et al. objective, at the Nash equilibrium.

    Greedy (CELF — the equilibrium objective is submodular per [Gionis et
    al. SDM'13]) on ``Σ_v b_v(∞)[S]`` computed with the exact sparse solve.
    Contrasting its seeds with :func:`gedt_select`'s finite-horizon seeds
    quantifies Appendix B's claim that finite horizons genuinely change the
    optimal seed set.
    """
    from repro.core.greedy import greedy_select
    from repro.opinion.fj import fj_equilibrium_exact

    state = problem.state
    q = problem.target

    def equilibrium_sum(seeds: tuple[int, ...]) -> float:
        b0, d = state.seeded(q, np.array(seeds, dtype=np.int64))
        return float(fj_equilibrium_exact(b0, d, state.graph(q)).sum())

    return greedy_select(equilibrium_sum, problem.n, k, lazy=True).seeds
