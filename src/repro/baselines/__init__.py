"""Baseline diffusion models and seed selectors compared in §VIII-A."""

from repro.baselines.cascade import expected_spread, simulate_ic, simulate_lt
from repro.baselines.centrality import (
    degree_select,
    influence_pagerank,
    pagerank_select,
    rwr_select,
)
from repro.baselines.gedt import gedt_select
from repro.baselines.imm import IMMResult, imm
from repro.baselines.rrset import rr_set_ic, rr_set_lt

__all__ = [
    "IMMResult",
    "degree_select",
    "expected_spread",
    "gedt_select",
    "imm",
    "influence_pagerank",
    "pagerank_select",
    "rr_set_ic",
    "rr_set_lt",
    "rwr_select",
    "simulate_ic",
    "simulate_lt",
]
