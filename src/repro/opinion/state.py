"""The multi-campaign problem state.

A :class:`CampaignState` bundles everything §II of the paper takes as input:
``r`` candidates, an influence graph ``W_q`` per candidate (possibly shared),
the initial-opinion matrix ``B⁰ ∈ [0,1]^{r×n}`` and the stubbornness matrix
``D`` (stored as its diagonal, one row per candidate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.utils.validation import check_opinions


@dataclass(frozen=True)
class CampaignState:
    """Immutable description of a multi-campaign opinion diffusion instance.

    Parameters
    ----------
    graphs:
        One :class:`InfluenceGraph` per candidate.  Pass the same object
        multiple times when all candidates share the influence matrix (as in
        the running example of Fig. 1).
    initial_opinions:
        ``(r, n)`` matrix ``B⁰``; ``initial_opinions[q, v]`` is user ``v``'s
        opinion on candidate ``q`` at time 0.
    stubbornness:
        ``(r, n)`` matrix of diagonal entries of ``D_q``; row ``q`` holds the
        per-user stubbornness toward candidate ``q``.
    candidates:
        Optional display names (defaults to ``c1..cr``).
    """

    graphs: tuple[InfluenceGraph, ...]
    initial_opinions: np.ndarray
    stubbornness: np.ndarray
    candidates: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        graphs = tuple(self.graphs)
        if len(graphs) < 1:
            raise ValueError("need at least one candidate graph")
        n = graphs[0].n
        if any(g.n != n for g in graphs):
            raise ValueError("all candidate graphs must have the same node count")
        b0 = check_opinions(np.asarray(self.initial_opinions, dtype=np.float64))
        d = check_opinions(np.asarray(self.stubbornness, dtype=np.float64), "stubbornness")
        r = len(graphs)
        if b0.shape != (r, n):
            raise ValueError(
                f"initial_opinions must have shape ({r}, {n}), got {b0.shape}"
            )
        if d.shape != (r, n):
            raise ValueError(f"stubbornness must have shape ({r}, {n}), got {d.shape}")
        names = tuple(self.candidates) or tuple(f"c{i + 1}" for i in range(r))
        if len(names) != r:
            raise ValueError(f"expected {r} candidate names, got {len(names)}")
        b0.setflags(write=False)
        d.setflags(write=False)
        object.__setattr__(self, "graphs", graphs)
        object.__setattr__(self, "initial_opinions", b0)
        object.__setattr__(self, "stubbornness", d)
        object.__setattr__(self, "candidates", names)

    # ------------------------------------------------------------------
    @property
    def r(self) -> int:
        """Number of candidates."""
        return len(self.graphs)

    @property
    def n(self) -> int:
        """Number of users."""
        return self.graphs[0].n

    def graph(self, q: int) -> InfluenceGraph:
        """Influence graph of candidate ``q``."""
        return self.graphs[q]

    def candidate_index(self, name: str) -> int:
        """Index of the candidate called ``name``."""
        try:
            return self.candidates.index(name)
        except ValueError:
            raise KeyError(f"unknown candidate {name!r}; have {self.candidates}") from None

    def seeded(self, q: int, seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(b0_q, d_q)`` row copies with ``seeds`` applied.

        Seeding a node for candidate ``q`` sets its initial opinion and its
        stubbornness to 1 (§II-C), freezing the node at full support.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size and (seeds.min() < 0 or seeds.max() >= self.n):
            raise ValueError("seed indices out of range")
        b0 = self.initial_opinions[q].copy()
        d = self.stubbornness[q].copy()
        b0[seeds] = 1.0
        d[seeds] = 1.0
        return b0, d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CampaignState(r={self.r}, n={self.n}, "
            f"candidates={list(self.candidates)})"
        )
