"""Fig. 8: cumulative score and seed-selection time vs k.

Expected shape (paper): DM and GED-T coincide exactly (the cumulative score
is single-campaign opinion maximization, §VIII-C), RW/RS track DM closely,
baselines trail, and the baseline gap is smaller than for plurality/Copeland
(DC reaches ~70% of RW's gain on the paper's data vs ~50% for plurality).
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import effectiveness_experiment
from repro.eval.reporting import format_series
from repro.voting.scores import CumulativeScore

KS = [5, 10, 20, 40]
METHODS = ["dm", "rw", "rs", "gedt", "ic", "lt", "pr", "rwr", "dc", "random"]
KW = {
    "rw": {"lambda_cap": 64},
    "rs": {"theta": 8000},
    "ic": {"theta_cap": 30000},
    "lt": {"theta_cap": 30000},
}


@pytest.mark.parametrize("ds_name", ["yelp", "mask"])
def test_fig8_cumulative(benchmark, ds_name, yelp_ds, mask_ds, save_result):
    ds = {"yelp": yelp_ds, "mask": mask_ds}[ds_name]
    result = run_once(
        benchmark,
        lambda: effectiveness_experiment(
            ds, CumulativeScore(), KS, METHODS, rng=17, method_kwargs=KW
        ),
    )
    baseline = ds.problem(CumulativeScore()).objective(())
    save_result(
        f"fig8_cumulative_{ds_name}",
        f"no-seed score: {baseline:.1f}\n"
        + format_series("k", KS, result.scores)
        + "\n\nselect time (s):\n"
        + format_series("k", KS, result.times),
    )
    # GED-T == DM for the cumulative score (identical objective + greedy).
    for dm_v, gedt_v in zip(result.scores["dm"], result.scores["gedt"]):
        assert dm_v == pytest.approx(gedt_v, abs=1e-9)
    # RW/RS stay close to DM (within a few percent of the gain).
    for m in ("rw", "rs"):
        gain_dm = result.scores["dm"][-1] - baseline
        gain_m = result.scores[m][-1] - baseline
        assert gain_m >= 0.7 * gain_dm
    # Baselines trail our methods.
    assert result.scores["dm"][-1] >= result.scores["random"][-1]
