"""Tests for the FJ / DeGroot diffusion models, including dense cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import graph_from_edges
from repro.opinion.degroot import degroot_evolve
from repro.opinion.fj import (
    apply_seeds,
    fj_equilibrium,
    fj_evolve,
    fj_step,
    fj_trajectory,
    horizon_opinions,
)
from tests.conftest import random_instance


def _example():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    b0 = np.array([0.4, 0.8, 0.6, 0.9])
    d = np.full(4, 0.5)
    return g, b0, d


def test_fj_step_matches_hand_computation():
    g, b0, d = _example()
    b1 = fj_step(b0, b0, d, g)
    # Example 1: users 1,2 retain; user 3 averages in-neighbors then self;
    # user 4 averages user 3 and self.
    np.testing.assert_allclose(b1, [0.4, 0.8, 0.6, 0.75])
    b2 = fj_step(b1, b0, d, g)
    np.testing.assert_allclose(b2[2], 0.5 * (0.5 * (0.4 + 0.8)) + 0.5 * 0.6)


def test_fj_evolve_matches_dense_iteration():
    state = random_instance(n=15, r=2, seed=9)
    g = state.graph(0)
    b0 = state.initial_opinions[0]
    d = state.stubbornness[0]
    dense_w = g.csr.toarray()
    expected = b0.copy()
    for _ in range(7):
        expected = (expected @ dense_w) * (1 - d) + b0 * d
    np.testing.assert_allclose(fj_evolve(b0, d, g, 7), expected, atol=1e-12)


def test_degroot_is_matrix_power():
    state = random_instance(n=10, r=1, seed=4)
    g = state.graph(0)
    b0 = state.initial_opinions[0]
    dense_w = np.linalg.matrix_power(g.csr.toarray(), 5)
    np.testing.assert_allclose(degroot_evolve(b0, g, 5), b0 @ dense_w, atol=1e-12)


def test_horizon_zero_returns_initial():
    g, b0, d = _example()
    np.testing.assert_allclose(fj_evolve(b0, d, g, 0), b0)


def test_negative_horizon_rejected():
    g, b0, d = _example()
    with pytest.raises(ValueError):
        fj_evolve(b0, d, g, -1)


def test_fully_stubborn_users_never_move():
    g, b0, _ = _example()
    d = np.ones(4)
    np.testing.assert_allclose(fj_evolve(b0, d, g, 13), b0)


def test_users_without_in_neighbors_retain_initial_opinion():
    g, b0, d = _example()
    out = fj_evolve(b0, np.zeros(4), g, 9)
    assert out[0] == pytest.approx(b0[0])
    assert out[1] == pytest.approx(b0[1])


def test_trajectory_length_and_consistency():
    g, b0, d = _example()
    traj = list(fj_trajectory(b0, d, g, 5))
    assert len(traj) == 6
    np.testing.assert_allclose(traj[0], b0)
    np.testing.assert_allclose(traj[5], fj_evolve(b0, d, g, 5))


def test_apply_seeds():
    b0 = np.array([0.1, 0.2, 0.3])
    d = np.array([0.0, 0.5, 1.0])
    b0s, ds = apply_seeds(b0, d, np.array([0]))
    assert b0s[0] == 1.0 and ds[0] == 1.0
    assert b0[0] == 0.1  # untouched


def test_seeded_node_stays_at_one_forever():
    g, b0, d = _example()
    b0s, ds = apply_seeds(b0, d, np.array([2]))
    out = fj_evolve(b0s, ds, g, 25)
    assert out[2] == pytest.approx(1.0)


def test_horizon_opinions_only_changes_target_row(random_state):
    seeds = np.array([0, 3])
    base = horizon_opinions(random_state, 6)
    seeded = horizon_opinions(random_state, 6, target=1, seeds=seeds)
    np.testing.assert_allclose(seeded[0], base[0])
    np.testing.assert_allclose(seeded[2], base[2])
    assert np.all(seeded[1] >= base[1] - 1e-12)


def test_fj_equilibrium_converges_with_stubbornness():
    state = random_instance(n=12, r=1, seed=11)
    g = state.graph(0)
    b0 = state.initial_opinions[0]
    d = np.clip(state.stubbornness[0], 0.1, 1.0)  # everyone somewhat stubborn
    eq, iters = fj_equilibrium(b0, d, g)
    np.testing.assert_allclose(fj_step(eq, b0, d, g), eq, atol=1e-8)
    assert iters >= 1


def test_fj_equilibrium_raises_on_oscillation():
    # Two oblivious nodes exchanging opinions forever (period-2 cycle).
    g = graph_from_edges(2, [0, 1], [1, 0])
    b0 = np.array([0.0, 1.0])
    d = np.zeros(2)
    with pytest.raises(RuntimeError, match="did not converge"):
        fj_equilibrium(b0, d, g, max_iter=50)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 20),
    t=st.integers(0, 12),
)
def test_property_opinions_stay_in_unit_interval(seed, n, t):
    """FJ iterates remain in [0,1] for any stochastic W, b0, d (paper §II-A)."""
    state = random_instance(n=n, r=1, seed=seed)
    out = fj_evolve(
        state.initial_opinions[0], state.stubbornness[0], state.graph(0), t
    )
    assert out.min() >= -1e-12
    assert out.max() <= 1 + 1e-12


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), t=st.integers(0, 8))
def test_property_seeding_never_decreases_target_opinions(seed, t):
    """Opinion values are non-decreasing in the seed set (§III-B)."""
    state = random_instance(n=10, r=2, seed=seed)
    rng = np.random.default_rng(seed)
    seeds = rng.choice(10, size=3, replace=False)
    b0, d = state.initial_opinions[0], state.stubbornness[0]
    base = fj_evolve(b0, d, state.graph(0), t)
    b0s, ds = apply_seeds(b0, d, seeds)
    seeded = fj_evolve(b0s, ds, state.graph(0), t)
    assert np.all(seeded >= base - 1e-12)
