"""Engine benchmark: the multiprocess fan-out and the in-place sparse re-pin.

Part 1 — dm-mp dense-phase scaling.  One exhaustive greedy round (all ``n``
single-seed extensions, plurality score) through
:class:`~repro.core.engine.BatchedDMEngine` and through
:class:`~repro.core.engine_mp.MultiprocessDMEngine` at 2 and 4 workers.
Gains must match to the 1e-10 parity contract (same arg-max seed).  The
scaling metric is deterministic, not a timer: the *critical path* of the
fanned-out dense phase is the largest per-worker ``dense_column_steps``
share (``engine.worker_stats``), and the speedup is the single-process
dense work divided by it.  On a multi-core host — each worker a separate
memory domain for the bandwidth-bound dense products — this ratio is the
wall-clock ceiling; on this repo's single-core CI runner the wall times
are reported alongside for honesty (IPC makes them *worse* than
single-process there, which is expected and not asserted against).

Part 2 — in-place re-pin.  Exhaustive session greedy on the Table-III
sparse retweet graph with the default structure-reusing in-place re-pin
vs the legacy ``repin="rebuild"`` COO->CSR path.  Selections must be
byte-identical; the profile assertion is again counter-based: the in-place
engine performs *zero* rebuilds (``stats.repin_rebuilds``) where the
legacy engine rebuilt on every sparse step, removing the global
lexsort/rebuild from the sparse-phase profile entirely.  Wall times and
the sparse-phase speedup are recorded to ``benchmarks/results/``.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_engine_mp.py``.
Set ``REPRO_BENCH_TINY=1`` for the CI smoke variant: tiny size, 2 workers,
pool lifecycle + parity + rebuild-removal assertions only.
"""

import os

import numpy as np

from benchmarks.conftest import BENCH_SEED, BENCH_TINY, run_once
from repro.core.engine import BatchedDMEngine
from repro.core.engine_mp import MultiprocessDMEngine
from repro.core.greedy import greedy_engine
from repro.datasets.twitter import _twitter_base, twitter_social_distancing
from repro.eval.reporting import format_series
from repro.utils.timing import Timer
from repro.voting.scores import PluralityScore

TINY = BENCH_TINY
MP_SIZE = 200 if TINY else 2000
WORKER_COUNTS = [2] if TINY else [2, 4]
REPIN_SIZES = [200] if TINY else [500, 2000]
#: Session greedy rounds for the re-pin comparison; the sparse phase is
#: exercised every round (each round's deltas start from fresh seeds).
REPIN_K = 4 if TINY else 16
HORIZON = 20
#: Acceptance floor for the critical-path dense-phase speedup with two
#: workers at n >= 2000 (balanced contiguous chunks make it ~2x minus the
#: per-chunk densify-threshold drift).
MIN_DENSE_SPEEDUP_2W = 1.6


def _dense_problem(n: int):
    dataset = twitter_social_distancing(n=n, rng=BENCH_SEED, horizon=HORIZON)
    problem = dataset.problem(PluralityScore())
    problem.others_by_user()  # shared inputs, warmed outside the timers
    problem.target_trajectory()
    return problem


def _sparse_problem(n: int):
    dataset = _twitter_base(
        "twitter-social-distancing-sparse",
        ("For Social Distancing", "Against Social Distancing"),
        np.array([0.42, 0.60]),
        n,
        10.0,
        2.5,
        HORIZON,
        BENCH_SEED,
        min_degree=1,
        exponent=2.6,
    )
    problem = dataset.problem(PluralityScore())
    problem.others_by_user()
    problem.target_trajectory()
    return problem


# ----------------------------------------------------------------------
# Part 1: multiprocess fan-out
# ----------------------------------------------------------------------
def _mp_rounds(n: int) -> list[dict[str, float]]:
    problem = _dense_problem(n)
    candidates = np.arange(n)
    batched = BatchedDMEngine(problem)
    with Timer() as ref_timer:
        reference = batched.marginal_gains((), candidates)
    total_dense = batched.stats.dense_column_steps
    rows = []
    for workers in WORKER_COUNTS:
        with MultiprocessDMEngine(problem, workers=workers, min_fanout=1) as engine:
            engine.ping()  # start the pool outside the timed region
            with Timer() as timer:
                gains = engine.marginal_gains((), candidates)
        np.testing.assert_allclose(gains, reference, atol=1e-10, rtol=0)
        assert int(np.argmax(gains)) == int(np.argmax(reference))
        critical = max(w.dense_column_steps for w in engine.worker_stats)
        rows.append(
            {
                "workers": workers,
                "total_dense": total_dense,
                "critical_dense": critical,
                "cp_speedup": total_dense / max(critical, 1),
                "batched_s": ref_timer.elapsed,
                "mp_s": timer.elapsed,
            }
        )
    return rows


def test_mp_fanout_dense_phase_scaling(benchmark, save_result, save_bench_json):
    rows = run_once(benchmark, lambda: _mp_rounds(MP_SIZE))
    series = {
        "batched dense col-steps": [r["total_dense"] for r in rows],
        "critical-path col-steps": [r["critical_dense"] for r in rows],
        "critical-path speedup (x)": [r["cp_speedup"] for r in rows],
        "batched wall (s)": [r["batched_s"] for r in rows],
        "dm-mp wall (s)": [r["mp_s"] for r in rows],
    }
    if not TINY:
        save_result(
            "engine_mp",
            "exhaustive greedy round, plurality, n=%d, t=%d, %d cpu core(s);\n"
            "critical path = max per-worker dense column-steps (deterministic;\n"
            "wall-clock bound on multi-core hosts, recorded for honesty here):\n%s"
            % (
                MP_SIZE,
                HORIZON,
                os.cpu_count() or 1,
                format_series("workers", WORKER_COUNTS, series),
            ),
        )
    # Perf-trajectory record: 2-worker counters (the smoke configuration).
    two = rows[0]
    save_bench_json(
        "engine_mp",
        {
            "cp_speedup_2w_x": {
                "value": two["cp_speedup"],
                "higher_is_better": True,
            },
            "critical_dense_col_steps_2w": {
                "value": float(two["critical_dense"]),
                "higher_is_better": False,
            },
        },
    )
    for row in rows:
        # Sharding must genuinely split the dense phase for every count.
        assert row["critical_dense"] < row["total_dense"], (
            f"fan-out did not shard the dense phase at {row['workers']} workers"
        )
        if not TINY and MP_SIZE >= 2000 and row["workers"] == 2:
            assert row["cp_speedup"] >= MIN_DENSE_SPEEDUP_2W, (
                f"dense-phase critical-path speedup only "
                f"{row['cp_speedup']:.2f}x with 2 workers at n={MP_SIZE}"
            )


# ----------------------------------------------------------------------
# Part 2: in-place sparse re-pin
# ----------------------------------------------------------------------
def _repin_one_size(n: int) -> dict[str, float]:
    problem = _sparse_problem(n)
    legacy_engine = BatchedDMEngine(problem, repin="rebuild")
    with Timer() as legacy_timer:
        legacy = greedy_engine(legacy_engine, REPIN_K, lazy=False)
    inplace_engine = BatchedDMEngine(problem)
    with Timer() as inplace_timer:
        inplace = greedy_engine(inplace_engine, REPIN_K, lazy=False)
    assert inplace.seeds.tolist() == legacy.seeds.tolist(), (
        f"selection diverged at n={n}"
    )
    np.testing.assert_allclose(inplace.gains, legacy.gains, atol=1e-10, rtol=0)
    # The profile claim: the in-place engine never rebuilds, the legacy
    # engine rebuilt on every sparse step it took.
    assert inplace_engine.stats.repin_rebuilds == 0
    assert legacy_engine.stats.repin_rebuilds == legacy_engine.stats.sparse_steps
    assert legacy_engine.stats.repin_rebuilds > 0
    return {
        "sparse_steps": inplace_engine.stats.sparse_steps,
        "rebuilds_removed": legacy_engine.stats.repin_rebuilds,
        "inserted": inplace_engine.stats.repin_inserted,
        "rebuild_s": legacy_timer.elapsed,
        "inplace_s": inplace_timer.elapsed,
        "speedup": legacy_timer.elapsed / max(inplace_timer.elapsed, 1e-12),
    }


def test_inplace_repin_removes_rebuilds(benchmark, save_result):
    rounds = run_once(benchmark, lambda: [_repin_one_size(n) for n in REPIN_SIZES])
    series = {
        "sparse steps": [r["sparse_steps"] for r in rounds],
        "rebuilds removed": [r["rebuilds_removed"] for r in rounds],
        "entries merged in": [r["inserted"] for r in rounds],
        "rebuild (s)": [r["rebuild_s"] for r in rounds],
        "in-place (s)": [r["inplace_s"] for r in rounds],
        "wall speedup (x)": [r["speedup"] for r in rounds],
    }
    if not TINY:
        save_result(
            "repin_sparse_phase",
            "exhaustive session greedy, plurality, sparse retweet graph, "
            "k=%d, t=%d:\n%s"
            % (REPIN_K, HORIZON, format_series("n", REPIN_SIZES, series)),
        )
