"""Sketch-based opinion estimation and seed selection (paper §VI, the RS method).

The sketch set is θ reverse walks whose start nodes are sampled uniformly at
random; the estimated score rescales the sample by ``n / θ``.  The walks are
simple paths — simpler and lighter than the RR-set BFS trees of classic IM —
and support the same post-generation truncation as Algorithm 4.

For the cumulative score, θ follows Theorem 13 with an IMM-style hypothesis
test for a lower bound on OPT.  For the plurality variants and Copeland the
paper's theoretical θ has no usable closed form, so §VI-E prescribes a
heuristic: grow θ until the attained score converges.  Both are implemented
here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import theta_cumulative, theta_estimate_round
from repro.core.greedy import GreedyResult
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import TruncatedWalks, WalkGreedyOptimizer
from repro.graph.alias import AliasSampler
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_seed_budget
from repro.voting.scores import CumulativeScore


@dataclass
class SketchSelectResult:
    """Seed set chosen by the RS method plus diagnostics."""

    seeds: np.ndarray
    estimated_objective: float
    exact_objective: float
    theta: int
    opt_lower_bound: float | None
    memory_bytes: int


def _run_sketch_greedy(
    problem: FJVoteProblem,
    k: int,
    theta: int,
    rng: np.random.Generator,
    sampler: AliasSampler | None,
    store=None,
) -> tuple[GreedyResult, TruncatedWalks]:
    """One sketch phase: θ uniform-start walks + greedy selection (Alg. 5).

    With a :class:`~repro.core.walk_store.WalkStore` the phase draws a
    copy-on-write view over the store's shared uniform pool — successive
    phases with growing θ *extend* one sample (the IMM martingale reuse)
    instead of regenerating private walk sets.
    """
    state = problem.state
    q = problem.target
    if store is not None:
        walks = store.uniform_view(q, theta)
    else:
        starts = rng.integers(0, problem.n, size=theta)
        walks = TruncatedWalks.generate(
            state.graph(q),
            state.stubbornness[q],
            state.initial_opinions[q],
            problem.horizon,
            starts,
            rng,
            sampler=sampler,
        )
    optimizer = WalkGreedyOptimizer(
        walks,
        problem.score,
        None
        if isinstance(problem.score, CumulativeScore)
        else problem.others_by_user(),
        grouping="walk",
    )
    return optimizer.select(k), walks


def estimate_opt_cumulative(
    problem: FJVoteProblem,
    k: int,
    *,
    epsilon: float = 0.1,
    ell: float = 1.0,
    theta_cap: int | None = None,
    rng: int | np.random.Generator | None = None,
    sampler: AliasSampler | None = None,
    store=None,
) -> float:
    """Lower bound on OPT for the cumulative score (adapted IMM Alg. 2 test).

    Tries guesses ``x = n/2, n/4, ..., k``; for each it draws the
    round-specific number of sketches, runs greedy, and accepts the guess
    when the estimated score clears ``(1 + ε') x``.  Falls back to ``k``
    (a size-``k`` seed set always has cumulative score at least ``k``:
    every seed is fully stubborn at opinion 1).
    """
    rng = ensure_rng(rng)
    n = problem.n
    k = check_seed_budget(k, n)
    if sampler is None and store is None:
        sampler = AliasSampler(problem.state.graph(problem.target).csc)
    eps_prime = float(np.sqrt(2.0) * epsilon)
    floor = max(k, 1)
    x = n / 2.0
    while x > floor:
        theta_i = theta_estimate_round(n, k, x, eps_prime, ell)
        if theta_cap is not None:
            theta_i = min(theta_i, int(theta_cap))
        result, _ = _run_sketch_greedy(
            problem, k, max(theta_i, 1), rng, sampler, store=store
        )
        if result.objective >= (1.0 + eps_prime) * x:
            return float(result.objective / (1.0 + eps_prime))
        x /= 2.0
    return float(floor)


def converge_theta(
    problem: FJVoteProblem,
    k: int,
    *,
    theta_start: int = 256,
    theta_max: int | None = None,
    tolerance: float = 0.02,
    rng: int | np.random.Generator | None = None,
    sampler: AliasSampler | None = None,
    store=None,
) -> int:
    """Heuristic θ for the plurality variants and Copeland (§VI-E).

    Doubles θ until the exact score of the greedy seed set changes by less
    than ``tolerance`` (relative), or θ reaches ``theta_max`` (default: n,
    beyond which RS loses its advantage over RW).  The resulting θ can be
    reused across k and t on the same dataset and score, as the paper notes.
    """
    rng = ensure_rng(rng)
    n = problem.n
    if theta_max is None:
        theta_max = n
    if sampler is None and store is None:
        sampler = AliasSampler(problem.state.graph(problem.target).csc)
    theta = max(int(theta_start), 1)
    prev_score: float | None = None
    while True:
        result, _ = _run_sketch_greedy(problem, k, theta, rng, sampler, store=store)
        score = problem.objective(result.seeds)
        if prev_score is not None:
            denom = max(abs(prev_score), 1e-12)
            if abs(score - prev_score) / denom <= tolerance:
                return theta
        if theta >= theta_max:
            return theta
        prev_score = score
        theta = min(theta * 2, theta_max)


def sketch_select(
    problem: FJVoteProblem,
    k: int,
    *,
    epsilon: float = 0.1,
    ell: float = 1.0,
    theta: int | None = None,
    theta_cap: int | None = None,
    theta_start: int = 256,
    convergence_tolerance: float = 0.02,
    rng: int | np.random.Generator | None = None,
    store=None,
) -> SketchSelectResult:
    """The RS method (Algorithm 5): greedy on sketch-estimated scores.

    Parameters
    ----------
    epsilon, ell:
        Accuracy parameters of Theorem 13 (cumulative score only); the paper
        defaults are ε = 0.1, ℓ = 1.
    theta:
        Explicit sketch count, bypassing estimation.
    theta_cap:
        Optional hard cap on θ (the theoretical count exceeds n on small
        graphs, where RS degenerates to RW; the paper's datasets have n in
        the millions).
    theta_start, convergence_tolerance:
        Controls for the §VI-E heuristic used by the non-cumulative scores.
    store:
        Optional :class:`~repro.core.walk_store.WalkStore`.  When given
        (e.g. by the evaluation harness, shared across methods and
        budgets), every phase — the OPT lower-bound rounds, the θ
        convergence ladder, and the final selection — draws from one
        extending uniform pool: a doubled θ reuses every walk already
        generated rather than redrawing from scratch.
    """
    rng = ensure_rng(rng)
    k = check_seed_budget(k, problem.n)
    if store is not None:
        store.require_problem(problem)
    sampler = (
        None
        if store is not None
        else AliasSampler(problem.state.graph(problem.target).csc)
    )
    opt_lb: float | None = None
    if theta is None:
        if isinstance(problem.score, CumulativeScore):
            opt_lb = estimate_opt_cumulative(
                problem,
                k,
                epsilon=epsilon,
                ell=ell,
                theta_cap=theta_cap,
                rng=rng,
                sampler=sampler,
                store=store,
            )
            theta = theta_cumulative(problem.n, k, opt_lb, epsilon, ell)
        else:
            theta = converge_theta(
                problem,
                k,
                theta_start=theta_start,
                theta_max=theta_cap,
                tolerance=convergence_tolerance,
                rng=rng,
                sampler=sampler,
                store=store,
            )
    if theta_cap is not None:
        theta = min(int(theta), int(theta_cap))
    theta = max(int(theta), 1)
    result, walks = _run_sketch_greedy(problem, k, theta, rng, sampler, store=store)
    return SketchSelectResult(
        seeds=result.seeds,
        estimated_objective=result.objective,
        exact_objective=problem.objective(result.seeds),
        theta=theta,
        opt_lower_bound=opt_lb,
        memory_bytes=walks.memory_bytes(),
    )
