"""Fig. 7: Copeland score and seed-selection time vs k.

Expected shape (paper): proposed methods reach the maximum Copeland score
(r-1, i.e. beating every competitor head-to-head) at moderate k, baselines
lag, and the efficiency ordering RS < RW << DM holds.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import effectiveness_experiment
from repro.eval.reporting import format_series
from repro.voting.scores import CopelandScore

KS = [5, 10, 20, 40]
METHODS = ["dm", "rw", "rs", "gedt", "ic", "lt", "pr", "rwr", "dc", "random"]
KW = {
    "rw": {"lambda_cap": 32},
    "rs": {"theta": 4000},
    "ic": {"theta_cap": 30000},
    "lt": {"theta_cap": 30000},
}


@pytest.mark.parametrize("ds_name", ["yelp", "election"])
def test_fig7_copeland(benchmark, ds_name, yelp_ds, election_ds, save_result):
    ds = {"yelp": yelp_ds, "election": election_ds}[ds_name]
    result = run_once(
        benchmark,
        lambda: effectiveness_experiment(
            ds, CopelandScore(), KS, METHODS, rng=13, method_kwargs=KW
        ),
    )
    baseline = ds.problem(CopelandScore()).objective(())
    save_result(
        f"fig7_copeland_{ds_name}",
        f"no-seed score: {baseline:.0f} (max possible: {ds.r - 1})\n"
        + format_series("k", KS, result.scores)
        + "\n\nselect time (s):\n"
        + format_series("k", KS, result.times),
    )
    max_score = ds.r - 1
    for m in METHODS:
        assert all(0 <= v <= max_score for v in result.scores[m])
    # Our methods match or beat every baseline at the largest k.
    ours = max(result.scores[m][-1] for m in ("dm", "rw", "rs"))
    best_baseline = max(
        result.scores[m][-1] for m in METHODS if m not in ("dm", "rw", "rs")
    )
    assert ours >= best_baseline - 1e-9
    assert result.times["rs"][-1] < result.times["dm"][-1]
