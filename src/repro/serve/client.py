"""Clients for the serving protocol.

:class:`ServeClient` is the asyncio client: it pipelines requests on one
connection (a background reader task matches response lines to pending
futures by ``id``) and keeps each response's **raw line bytes** around —
that is what the coalescing tests compare for byte-identity.
:func:`request_once` is the synchronous one-shot helper for scripts and
tests; :func:`run_load` drives a concurrent load against a server and
reports per-request latencies, which backs ``repro serve-load`` and
``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.serve.protocol import ENCODING, encode


class ServeClient:
    """Pipelined asyncio client for one server connection.

    Use :meth:`connect`, then :meth:`request` (many may be in flight at
    once); :meth:`close` cancels the reader and fails anything pending.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[Any, asyncio.Future] = {}
        self._next_id = 0
        self._read_task = asyncio.create_task(
            self._read_loop(), name="repro-serve-client-reader"
        )

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, op: str, **params: Any) -> dict:
        """Send one request; returns the decoded response payload."""
        payload, _ = await self.request_raw(op, **params)
        return payload

    async def request_raw(self, op: str, **params: Any) -> tuple[dict, bytes]:
        """Like :meth:`request` but also returns the raw response line
        (newline included) for byte-level comparisons."""
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(encode({"id": request_id, "op": op, **params}))
            await self._writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def _read_loop(self) -> None:
        failure: Exception = ConnectionError("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                payload = json.loads(line.decode(ENCODING))
                future = self._pending.get(payload.get("id"))
                if future is not None and not future.done():
                    future.set_result((payload, line))
        except Exception as exc:  # noqa: BLE001 - fail pending below
            failure = exc
        for future in self._pending.values():
            if not future.done():
                future.set_exception(failure)

    async def close(self) -> None:
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def request_once(
    host: str,
    port: int,
    op: str,
    *,
    timeout: float = 30.0,
    **params: Any,
) -> dict:
    """Open a connection, send one request, return the decoded response."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(encode({"id": 0, "op": op, **params}))
        with sock.makefile("rb") as stream:
            line = stream.readline()
    if not line:
        raise ConnectionError("server closed the connection without replying")
    return json.loads(line.decode(ENCODING))


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` run, in request order."""

    responses: list[dict] = field(default_factory=list)
    raw: list[bytes] = field(default_factory=list)
    latencies_s: list[float] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def qps(self) -> float:
        return len(self.responses) / self.elapsed_s if self.elapsed_s else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(
            len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[index]


async def _run_load_async(
    host: str, port: int, payloads: Sequence[dict], connections: int
) -> LoadReport:
    count = max(1, min(int(connections), len(payloads) or 1))
    clients = [await ServeClient.connect(host, port) for _ in range(count)]
    report = LoadReport()
    try:

        async def fire(slot: int, payload: dict) -> tuple[dict, bytes, float]:
            client = clients[slot % count]
            params = {k: v for k, v in payload.items() if k != "op"}
            started = time.perf_counter()
            response, line = await client.request_raw(payload["op"], **params)
            return response, line, time.perf_counter() - started

        started = time.perf_counter()
        outcomes = await asyncio.gather(
            *(fire(slot, payload) for slot, payload in enumerate(payloads))
        )
        report.elapsed_s = time.perf_counter() - started
        for response, line, latency in outcomes:
            report.responses.append(response)
            report.raw.append(line)
            report.latencies_s.append(latency)
    finally:
        for client in clients:
            await client.close()
    return report


def run_load(
    host: str,
    port: int,
    payloads: Sequence[dict],
    *,
    connections: int = 8,
) -> LoadReport:
    """Fire ``payloads`` (dicts with an ``op`` key plus parameters)
    concurrently over ``connections`` pipelined connections; all requests
    launch at once, so requests across connections land in the server's
    queue together — the load a coalescing server is built for."""
    return asyncio.run(_run_load_async(host, port, payloads, connections))
