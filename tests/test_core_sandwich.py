"""Tests for sandwich approximation: bound validity and Algorithm 3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import FJVoteProblem
from repro.core.reachability import ReachabilityIndex
from repro.core.sandwich import (
    favorable_users,
    lower_bound_greedy,
    sandwich_select,
    weakly_favorable_users,
)
from repro.voting.rank import ranks
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PApprovalScore,
    PluralityScore,
)
from tests.conftest import random_instance


def _ub_positional(problem, seeds):
    """UB(S) of Definition 4 computed directly."""
    score = problem.score
    index = ReachabilityIndex(problem.state.graph(problem.target), problem.horizon)
    base = favorable_users(problem)
    return score.weight_at(1) * float(np.union1d(index.reach_set(seeds), base).size)


def _lb_positional(problem, seeds):
    """LB(S) of Definition 3 computed directly."""
    score = problem.score
    fav = favorable_users(problem)
    vals = problem.target_opinions(np.asarray(seeds, dtype=np.int64))
    return score.weight_at(score.p) * float(vals[fav].sum())


def _ub_copeland(problem, seeds):
    """UB(S) of Definition 6 computed directly."""
    index = ReachabilityIndex(problem.state.graph(problem.target), problem.horizon)
    base = weakly_favorable_users(problem)
    weight = (problem.r - 1) / (problem.n // 2 + 1)
    return weight * float(np.union1d(index.reach_set(seeds), base).size)


def test_favorable_users_definition(random_state):
    problem = FJVoteProblem(random_state, 0, 3, PApprovalScore(2, random_state.r))
    fav = favorable_users(problem)
    beta = ranks(problem.full_opinions(()), 0)
    np.testing.assert_array_equal(fav, np.where(beta <= 2)[0])


def test_favorable_users_requires_positional(random_state):
    problem = FJVoteProblem(random_state, 0, 3, CumulativeScore())
    with pytest.raises(TypeError):
        favorable_users(problem)


def test_weakly_favorable_users_definition(random_state):
    problem = FJVoteProblem(random_state, 0, 3, CopelandScore())
    weak = weakly_favorable_users(problem)
    opinions = problem.full_opinions(())
    others_min = np.delete(opinions, 0, axis=0).min(axis=0)
    np.testing.assert_array_equal(weak, np.where(opinions[0] > others_min)[0])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000), k=st.integers(0, 3))
def test_property_lb_f_ub_ordering_plurality(seed, k):
    """Theorems 5-6: LB(S) <= F(S) <= UB(S) for random instances and seeds."""
    state = random_instance(n=9, r=3, seed=seed)
    problem = FJVoteProblem(state, 0, 2, PluralityScore())
    rng = np.random.default_rng(seed)
    seeds = rng.choice(9, size=k, replace=False)
    f = problem.objective(seeds)
    assert _lb_positional(problem, seeds) <= f + 1e-9
    assert f <= _ub_positional(problem, seeds) + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000), k=st.integers(0, 3))
def test_property_f_ub_ordering_copeland(seed, k):
    """Theorem 7: F(S) <= UB(S) for Copeland (no-ties caveat noted in §IV-C)."""
    state = random_instance(n=9, r=3, seed=seed)
    problem = FJVoteProblem(state, 0, 2, CopelandScore())
    rng = np.random.default_rng(seed)
    seeds = rng.choice(9, size=k, replace=False)
    assert problem.objective(seeds) <= _ub_copeland(problem, seeds) + 1e-9


def test_lower_bound_greedy_is_submodular_cumulative_restriction():
    state = random_instance(n=8, r=2, seed=4)
    problem = FJVoteProblem(state, 0, 2, PluralityScore())
    fav = favorable_users(problem)
    result, weight = lower_bound_greedy(problem, 2, fav)
    assert result.seeds.size == 2
    assert result.objective == pytest.approx(_lb_positional(problem, result.seeds))
    assert weight == 1.0  # plurality: ω[1] = 1


def test_sandwich_select_returns_best_of_candidates():
    state = random_instance(n=10, r=3, seed=6)
    problem = FJVoteProblem(state, 0, 2, PluralityScore())
    result = sandwich_select(problem, 2, method="dm")
    f_feasible = problem.objective(result.seeds_feasible)
    f_upper = problem.objective(result.seeds_upper)
    f_lower = problem.objective(result.seeds_lower)
    assert result.objective == pytest.approx(max(f_feasible, f_upper, f_lower))
    assert result.chosen in ("F", "UB", "LB")


def test_sandwich_ratio_in_unit_interval():
    for seed in range(3):
        state = random_instance(n=10, r=3, seed=seed)
        problem = FJVoteProblem(state, 0, 2, PluralityScore())
        result = sandwich_select(problem, 2, method="dm")
        assert 0.0 <= result.sandwich_ratio <= 1.0 + 1e-9
        assert result.approximation_factor <= 1 - 1 / np.e + 1e-9


def test_sandwich_copeland_has_no_lower_bound_seeds():
    state = random_instance(n=10, r=3, seed=2)
    problem = FJVoteProblem(state, 0, 2, CopelandScore())
    result = sandwich_select(problem, 2, method="dm")
    assert result.seeds_lower is None
    assert result.chosen in ("F", "UB")


def test_sandwich_rejects_cumulative():
    state = random_instance(n=8, r=2, seed=1)
    problem = FJVoteProblem(state, 0, 2, CumulativeScore())
    with pytest.raises(TypeError):
        sandwich_select(problem, 2)


def test_sandwich_with_rw_method():
    state = random_instance(n=10, r=2, seed=9)
    problem = FJVoteProblem(state, 0, 2, PluralityScore())
    result = sandwich_select(problem, 2, method="rw", rng=3, walks_per_node=16)
    assert result.seeds.size == 2


def test_sandwich_with_custom_selector():
    state = random_instance(n=10, r=2, seed=9)
    problem = FJVoteProblem(state, 0, 2, PluralityScore())
    result = sandwich_select(
        problem, 2, feasible_selector=lambda k: np.arange(k)
    )
    np.testing.assert_array_equal(result.seeds_feasible, [0, 1])


def test_sandwich_unknown_method():
    state = random_instance(n=8, r=2, seed=0)
    problem = FJVoteProblem(state, 0, 2, PluralityScore())
    with pytest.raises(ValueError):
        sandwich_select(problem, 2, method="magic")
