"""The DeGroot opinion diffusion model (paper Eq. 1).

``B(t) = B(0) @ W^t``: at every step each user adopts the weighted average
of her in-neighbors' previous opinions.  This is the stubbornness-free
special case of FJ, so the implementation simply delegates with ``d = 0``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.opinion.fj import fj_evolve


def degroot_evolve(b0: np.ndarray, graph: InfluenceGraph, t: int) -> np.ndarray:
    """Opinions at time ``t`` under DeGroot (``b0 @ W^t``, computed iteratively)."""
    zeros = np.zeros(graph.n, dtype=np.float64)
    return fj_evolve(np.asarray(b0, dtype=np.float64), zeros, graph, t)
