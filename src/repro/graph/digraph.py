"""Sparse directed influence graph.

The paper (§II) models the social network as a directed graph ``G = (V, E)``
with a *column-stochastic* influence matrix ``W`` per candidate, where
``w[i, j]`` is the influence weight of user ``i`` on user ``j``.  Column
``j`` therefore holds the in-neighbor weights of node ``j`` and sums to 1.

:class:`InfluenceGraph` wraps a ``scipy.sparse`` matrix and exposes both
orientations: CSR for fast row access (out-edges, used by forward
reachability and cascade baselines) and CSC for fast column access
(in-edges, used by the reverse random walks of §V).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

_STOCHASTIC_ATOL = 1e-8


class InfluenceGraph:
    """A directed graph with a column-stochastic edge-weight matrix.

    Parameters
    ----------
    matrix:
        ``(n, n)`` sparse matrix with non-negative entries whose columns each
        sum to 1.  Use :func:`repro.graph.build.graph_from_edges` (or
        :func:`repro.graph.build.column_stochastic`) to construct one from
        raw edge weights.
    validate:
        When true (default), verify non-negativity and column sums.
    """

    def __init__(self, matrix: sparse.spmatrix, *, validate: bool = True) -> None:
        csr = sparse.csr_matrix(matrix, dtype=np.float64)
        if csr.shape[0] != csr.shape[1]:
            raise ValueError(f"influence matrix must be square, got {csr.shape}")
        csr.eliminate_zeros()
        csr.sort_indices()
        if validate:
            _validate_column_stochastic(csr)
        self._csr = csr
        self._csc = csr.tocsc()
        self._csc.sort_indices()
        #: Monotonically increasing surgery counter.  Starts at 0 and is
        #: bumped by every :meth:`apply_edge_delta`; cache layers (problem,
        #: engine, walk store) key their validity on it.
        self.version = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._csr.shape[0]

    @property
    def m(self) -> int:
        """Number of (non-zero weight) directed edges, including self-loops."""
        return self._csr.nnz

    @property
    def csr(self) -> sparse.csr_matrix:
        """Row-oriented weight matrix (row i = out-edges of node i)."""
        return self._csr

    @property
    def csc(self) -> sparse.csc_matrix:
        """Column-oriented weight matrix (column j = in-edges of node j)."""
        return self._csc

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def out_neighbors(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(targets, weights)`` of the out-edges of node ``i``."""
        lo, hi = self._csr.indptr[i], self._csr.indptr[i + 1]
        return self._csr.indices[lo:hi], self._csr.data[lo:hi]

    def in_neighbors(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, weights)`` of the in-edges of node ``j``.

        The weights sum to 1 by column-stochasticity, so this is directly the
        transition distribution of a reverse random-walk step from ``j``.
        """
        lo, hi = self._csc.indptr[j], self._csc.indptr[j + 1]
        return self._csc.indices[lo:hi], self._csc.data[lo:hi]

    def out_degrees(self) -> np.ndarray:
        """Out-degree (edge count) of every node."""
        return np.diff(self._csr.indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree (edge count) of every node."""
        return np.diff(self._csc.indptr)

    def weighted_out_degrees(self) -> np.ndarray:
        """Sum of outgoing weights per node (the DC baseline's centrality).

        Self-loops are excluded: they are artifacts of stochastic
        normalization for nodes without in-neighbors, not social influence.
        """
        totals = np.asarray(self._csr.sum(axis=1)).ravel()
        return totals - self._csr.diagonal()

    # ------------------------------------------------------------------
    # Incremental surgery
    # ------------------------------------------------------------------
    def apply_edge_delta(
        self,
        added: "list[tuple[int, int, float]] | tuple" = (),
        removed: "list[tuple[int, int]] | tuple" = (),
    ) -> tuple[np.ndarray, bool]:
        """Apply an edge delta in place and return ``(touched, structural)``.

        ``added`` holds ``(src, dst, weight)`` triples: a pair that already
        exists gets its weight *replaced*, a new pair is inserted.  Weights
        are interpreted relative to the column's current stored weights, and
        every touched column is renormalized to sum to 1 afterwards (a column
        emptied by removals receives the standard self-loop of weight 1).
        ``removed`` holds ``(src, dst)`` pairs that must exist.

        Weight-only deltas (all added pairs already present, nothing removed)
        rewrite ``csr``/``csc`` data buffers in place, preserving the array
        objects — shared-memory views over them observe the update without
        any re-mapping.  Structural deltas splice the changed columns into
        fresh canonical CSC/CSR arrays ("structural merge"); untouched
        columns keep their exact bytes either way, so the result is
        bit-identical to rebuilding an :class:`InfluenceGraph` from the
        post-delta matrix.

        Returns the sorted array of touched columns (nodes whose in-edge
        distribution changed) and whether the sparsity structure changed.
        Bumps :attr:`version` by one when the delta is non-empty.
        """
        n = self.n
        add = [(int(s), int(t), float(w)) for s, t, w in added]
        rem = [(int(s), int(t)) for s, t in removed]
        for s, t, w in add:
            if not (0 <= s < n and 0 <= t < n):
                raise ValueError(f"added edge ({s}, {t}) out of range [0, {n})")
            if w <= 0:
                raise ValueError(
                    f"added edge ({s}, {t}) has non-positive weight {w!r}; "
                    "use `removed` to delete edges"
                )
        for s, t in rem:
            if not (0 <= s < n and 0 <= t < n):
                raise ValueError(f"removed edge ({s}, {t}) out of range [0, {n})")
        if {(s, t) for s, t, _ in add} & set(rem):
            raise ValueError("an edge appears in both `added` and `removed`")
        if not add and not rem:
            return np.empty(0, dtype=np.int64), False

        csc = self._csc
        touched = sorted({t for _, t, _ in add} | {t for _, t in rem})
        # Assemble each touched column's post-delta (indices, data) pair.
        new_cols: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        structural = False
        for t in touched:
            lo, hi = int(csc.indptr[t]), int(csc.indptr[t + 1])
            col = dict(
                zip(csc.indices[lo:hi].tolist(), csc.data[lo:hi].tolist())
            )
            for s, tt in rem:
                if tt != t:
                    continue
                if s not in col:
                    raise ValueError(f"cannot remove missing edge ({s}, {t})")
                del col[s]
            for s, tt, w in add:
                if tt == t:
                    col[s] = w
            if not col:
                col = {t: 1.0}
            sources = np.array(sorted(col), dtype=csc.indices.dtype)
            weights = np.array([col[int(s)] for s in sources], dtype=np.float64)
            weights = weights / weights.sum()
            if sources.size != hi - lo or not np.array_equal(
                sources, csc.indices[lo:hi]
            ):
                structural = True
            new_cols[t] = (sources, weights)

        self._install_columns(touched, new_cols, structural)
        self.version += 1
        return np.asarray(touched, dtype=np.int64), structural

    def adopt_columns(
        self,
        columns: "dict[int, tuple[np.ndarray, np.ndarray]]",
        version: int,
    ) -> None:
        """Splice already-normalized post-delta columns in (worker side).

        The ``dm-mp`` delta broadcast ships each touched column's final
        ``(sources, weights)`` pair instead of the raw delta: workers must
        not re-run :meth:`apply_edge_delta` (renormalization is not
        idempotent), and splicing the parent's bytes keeps the worker
        matrices bit-identical to the parent's.  ``version`` adopts the
        parent's post-delta surgery counter.
        """
        if not columns:
            return
        csc = self._csc
        touched = sorted(int(t) for t in columns)
        new_cols: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        structural = False
        for t in touched:
            sources = np.asarray(columns[t][0], dtype=csc.indices.dtype)
            weights = np.asarray(columns[t][1], dtype=np.float64)
            lo, hi = int(csc.indptr[t]), int(csc.indptr[t + 1])
            if sources.size != hi - lo or not np.array_equal(
                sources, csc.indices[lo:hi]
            ):
                structural = True
            new_cols[t] = (sources, weights)
        self._install_columns(touched, new_cols, structural)
        self.version = int(version)

    def _install_columns(
        self,
        touched: "list[int]",
        new_cols: "dict[int, tuple[np.ndarray, np.ndarray]]",
        structural: bool,
    ) -> None:
        """Write post-delta columns into both orientations (in place when
        the sparsity pattern allows, canonical splice otherwise)."""
        n = self.n
        csc = self._csc
        if not structural:
            # Data-only: write the CSC buffer in place and mirror the same
            # values into the CSR buffer via entry-key search (the re-pin
            # idiom of repro.core.engine).
            for t in touched:
                lo, hi = int(csc.indptr[t]), int(csc.indptr[t + 1])
                csc.data[lo:hi] = new_cols[t][1]
            csr = self._csr
            entry_keys = (
                np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
                * n
                + csr.indices
            )
            for t in touched:
                sources, weights = new_cols[t]
                pos = np.searchsorted(
                    entry_keys, sources.astype(np.int64) * n + t
                )
                csr.data[pos] = weights
        else:
            chunks_i: list[np.ndarray] = []
            chunks_d: list[np.ndarray] = []
            counts = np.diff(csc.indptr).astype(np.int64)
            prev = 0
            for t in touched:
                lo_prev = int(csc.indptr[prev])
                lo_t = int(csc.indptr[t])
                chunks_i.append(csc.indices[lo_prev:lo_t])
                chunks_d.append(csc.data[lo_prev:lo_t])
                sources, weights = new_cols[t]
                chunks_i.append(sources)
                chunks_d.append(weights)
                counts[t] = sources.size
                prev = t + 1
            chunks_i.append(csc.indices[int(csc.indptr[prev]) :])
            chunks_d.append(csc.data[int(csc.indptr[prev]) :])
            indptr = np.zeros(n + 1, dtype=csc.indptr.dtype)
            np.cumsum(counts, out=indptr[1:])
            new_csc = sparse.csc_matrix(
                (np.concatenate(chunks_d), np.concatenate(chunks_i), indptr),
                shape=(n, n),
            )
            new_csc.sort_indices()
            self._csc = new_csc
            csr = new_csc.tocsr()
            csr.sort_indices()
            self._csr = csr

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, weight)`` arrays of all edges (COO order)."""
        coo = self._csr.tocoo()
        return coo.row, coo.col, coo.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InfluenceGraph(n={self.n}, m={self.m})"


def _validate_column_stochastic(csr: sparse.csr_matrix) -> None:
    if csr.nnz and csr.data.min() < 0:
        raise ValueError("influence weights must be non-negative")
    col_sums = np.asarray(csr.sum(axis=0)).ravel()
    bad = np.where(np.abs(col_sums - 1.0) > _STOCHASTIC_ATOL)[0]
    if bad.size:
        j = int(bad[0])
        raise ValueError(
            f"matrix is not column-stochastic: column {j} sums to "
            f"{col_sums[j]:.6g} ({bad.size} offending columns); normalize "
            "with repro.graph.build.column_stochastic first"
        )
