"""Tests for the ObjectiveEngine backends (repro.core.engine).

The central contract: :class:`BatchedDMEngine` is an *exact* reformulation
of per-set DM evaluation — identical objectives to 1e-10 across scores,
horizons, seed configurations and competitor seeds — verified both with
hand-picked cases and a hypothesis property suite.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    ENGINE_NAMES,
    BatchedDMEngine,
    DMEngine,
    ObjectiveEngine,
    WalkEngine,
    make_engine,
    parse_engine_spec,
    spec_is_exact_dm,
)
from repro.core.engine_mp import MultiprocessDMEngine
from repro.core.greedy import greedy_dm, greedy_engine
from repro.core.problem import FJVoteProblem
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PApprovalScore,
    PluralityScore,
    PositionalPApprovalScore,
)
from tests.conftest import random_instance

SCORE_FACTORIES = {
    "cumulative": CumulativeScore,
    "plurality": PluralityScore,
    "copeland": CopelandScore,
    "p-approval": lambda: PApprovalScore(2, 3),
    "positional": lambda: PositionalPApprovalScore(2, np.array([1.0, 0.5, 0.25])),
}


def make_problem(seed, score_name, horizon, *, n=13, r=3, with_competitor_seeds=False):
    state = random_instance(n=n, r=r, seed=seed)
    competitor_seeds = None
    if with_competitor_seeds:
        rng = np.random.default_rng(seed + 100)
        competitor_seeds = {1: rng.choice(n, size=2, replace=False)}
    return FJVoteProblem(
        state,
        0,
        horizon,
        SCORE_FACTORIES[score_name](),
        competitor_seeds=competitor_seeds,
    )


# ----------------------------------------------------------------------
# Property-based parity: batched == per-set to 1e-10
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 50),
    score_name=st.sampled_from(sorted(SCORE_FACTORIES)),
    horizon=st.integers(0, 6),
    with_competitor_seeds=st.booleans(),
    data=st.data(),
)
def test_batched_matches_per_set_objectives(
    seed, score_name, horizon, with_competitor_seeds, data
):
    problem = make_problem(
        seed, score_name, horizon, with_competitor_seeds=with_competitor_seeds
    )
    n = problem.n
    num_sets = data.draw(st.integers(1, 5))
    seed_sets = [
        data.draw(
            st.lists(st.integers(0, n - 1), min_size=0, max_size=4), label="seeds"
        )
        for _ in range(num_sets)
    ]
    per_set = DMEngine(problem).evaluate(seed_sets)
    batched = BatchedDMEngine(
        problem,
        batch_rows=data.draw(st.sampled_from([1, 2, 512])),
        densify_threshold=data.draw(st.sampled_from([0.0, 0.15, 1.0])),
    ).evaluate(seed_sets)
    np.testing.assert_allclose(batched, per_set, atol=1e-10, rtol=0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 30),
    score_name=st.sampled_from(sorted(SCORE_FACTORIES)),
    horizon=st.integers(0, 5),
)
def test_batched_greedy_selects_identical_seeds(seed, score_name, horizon):
    """Batched greedy must pick the same seeds as per-set greedy."""
    problem = make_problem(seed, score_name, horizon, n=11)
    per_set = greedy_dm(problem, 3, engine="dm")
    batched = greedy_dm(problem, 3, engine="dm-batched")
    assert per_set.seeds.tolist() == batched.seeds.tolist()
    assert batched.objective == pytest.approx(per_set.objective, abs=1e-10)
    np.testing.assert_allclose(batched.gains, per_set.gains, atol=1e-10)
    assert batched.evaluations == per_set.evaluations


# ----------------------------------------------------------------------
# Targeted engine behaviour
# ----------------------------------------------------------------------
def test_capability_flags():
    problem = make_problem(0, "plurality", 3)
    assert DMEngine(problem).supports_batch is False
    assert DMEngine(problem).is_estimate is False
    assert BatchedDMEngine(problem).supports_batch is True
    assert BatchedDMEngine(problem).is_estimate is False
    walk = make_engine("rw", problem, rng=0, walks_per_node=4)
    assert walk.supports_batch is True
    assert walk.is_estimate is True


def test_make_engine_specs():
    problem = make_problem(0, "cumulative", 2)
    assert isinstance(make_engine(None, problem), BatchedDMEngine)
    assert isinstance(make_engine("dm", problem), DMEngine)
    assert isinstance(make_engine("dm-batched", problem), BatchedDMEngine)
    assert isinstance(make_engine("rw", problem, walks_per_node=2), WalkEngine)
    assert isinstance(make_engine("sketch", problem, theta=50), WalkEngine)
    with make_engine("dm-mp:3", problem) as mp_engine:
        assert isinstance(mp_engine, MultiprocessDMEngine)
        assert mp_engine.workers == 3
    engine = DMEngine(problem)
    assert make_engine(engine, problem) is engine
    with pytest.raises(ValueError):
        make_engine("warp-drive", problem)
    assert set(ENGINE_NAMES) == {
        "dm",
        "dm-batched",
        "dm-mp",
        "rw",
        "sketch",
        "rw-store",
    }
    rw_store = make_engine("rw-store:2", problem, rng=0, walks_per_node=2)
    assert isinstance(rw_store, WalkEngine)
    assert rw_store.store.shards == 2
    assert rw_store.adaptive


def test_parse_engine_spec_and_exactness():
    assert parse_engine_spec("dm-batched") == ("dm-batched", {})
    assert parse_engine_spec("dm-mp") == ("dm-mp", {})
    assert parse_engine_spec("dm-mp:4") == ("dm-mp", {"workers": 4})
    for spec in (None, "dm", "dm-batched", "dm-mp", "dm-mp:2"):
        assert spec_is_exact_dm(spec), spec
    for spec in ("rw", "sketch", "dm-mp:0", "nope", 7):
        assert not spec_is_exact_dm(spec), spec


@pytest.mark.parametrize(
    "bad", ["dm-mp:", "dm-mp:0", "dm-mp:-2", "dm-mp:two", "dm-mp:1:1", "rw:3"]
)
def test_make_engine_rejects_malformed_worker_specs(bad):
    """Malformed dm-mp:<workers> forms fail with the registry's single
    ValueError — the same message the CLI --engine option surfaces."""
    problem = make_problem(0, "cumulative", 2)
    with pytest.raises(ValueError) as excinfo:
        make_engine(bad, problem)
    message = str(excinfo.value)
    for name in ENGINE_NAMES:
        assert name in message
    assert "dm-mp:<workers>" in message


def test_make_engine_unknown_spec_error_lists_engine_names():
    """The ValueError must name every registered spec (the CLI help's source)."""
    problem = make_problem(0, "cumulative", 2)
    for bad in ("warp-drive", "", 42):
        with pytest.raises(ValueError) as excinfo:
            make_engine(bad, problem)
        message = str(excinfo.value)
        for name in ENGINE_NAMES:
            assert name in message


def test_marginal_gains_match_evaluate_differences():
    problem = make_problem(3, "plurality", 4)
    engine = BatchedDMEngine(problem)
    base = (2, 5)
    candidates = np.array([0, 1, 7, 9])
    gains = engine.marginal_gains(base, candidates)
    base_value = engine.evaluate_one(base)
    for c, g in zip(candidates, gains):
        assert g == pytest.approx(
            engine.evaluate_one(base + (int(c),)) - base_value, abs=1e-10
        )


def test_duplicate_and_empty_seed_sets():
    problem = make_problem(4, "copeland", 3)
    engine = BatchedDMEngine(problem)
    assert engine.evaluate_one(()) == pytest.approx(problem.objective(()), abs=1e-12)
    assert engine.evaluate_one((5, 5, 5)) == pytest.approx(
        problem.objective(np.array([5])), abs=1e-10
    )
    assert engine.evaluate([]).size == 0


def test_out_of_range_seeds_raise():
    problem = make_problem(0, "cumulative", 2)
    with pytest.raises(ValueError):
        BatchedDMEngine(problem).evaluate([(problem.n,)])
    with pytest.raises(ValueError):
        BatchedDMEngine(problem).evaluate([(-1,)])


def test_user_weights_restrict_cumulative():
    """Weighted cumulative objective == weight * sum over the masked users."""
    problem = make_problem(1, "cumulative", 3)
    weights = np.zeros(problem.n)
    favorable = np.array([0, 3, 4, 8])
    weights[favorable] = 0.5
    engine = BatchedDMEngine(problem, user_weights=weights)
    seeds = (2, 6)
    expected = 0.5 * float(problem.target_opinions(np.array(seeds))[favorable].sum())
    assert engine.evaluate_one(seeds) == pytest.approx(expected, abs=1e-12)


def test_user_weights_reject_non_separable():
    problem = make_problem(1, "copeland", 3)
    with pytest.raises(TypeError):
        BatchedDMEngine(problem, user_weights=np.ones(problem.n))


# ----------------------------------------------------------------------
# Walk-engine adapter
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", ["rw", "sketch"])
def test_walk_engine_gains_consistent_with_evaluate(spec):
    problem = make_problem(2, "plurality", 3, n=12, r=2)
    engine = make_engine(spec, problem, rng=7, walks_per_node=8, theta=300)
    base = (4,)
    candidates = np.array([0, 1, 2, 3])
    gains = engine.marginal_gains(base, candidates)
    for c, g in zip(candidates, gains):
        direct = engine.evaluate_one(base + (int(c),)) - engine.evaluate_one(base)
        assert g == pytest.approx(direct, abs=1e-9)


def test_walk_engine_reset_and_replay():
    """Evaluating sets in any order must not leak truncation state."""
    problem = make_problem(5, "cumulative", 3, n=12, r=2)
    engine = make_engine("rw", problem, rng=3, walks_per_node=8)
    sets = [(1, 2), (), (9,), (1, 2), ()]
    first = engine.evaluate(sets)
    again = engine.evaluate(sets[::-1])[::-1]
    np.testing.assert_allclose(first, again, atol=1e-12)


def test_greedy_engine_over_walk_engine_runs():
    problem = make_problem(6, "plurality", 3, n=12, r=2)
    engine = make_engine("rw", problem, rng=11, walks_per_node=8)
    result = greedy_engine(engine, 3)
    assert result.seeds.size == 3
    assert np.unique(result.seeds).size == 3


@pytest.mark.parametrize("spec", ["rw", "sketch"])
def test_walk_engine_selections_reproducible_with_rng(spec):
    """A seeded rng must make walk-engine greedy selections deterministic."""
    problem = make_problem(7, "plurality", 3, n=14, r=2)
    runs = [
        greedy_dm(problem, 3, engine=spec, rng=123).seeds.tolist()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def test_sandwich_final_scoring_ignores_weighted_or_foreign_engines():
    """The sandwich arg-max must always score finalists exactly under F."""
    from repro.core.sandwich import sandwich_select

    problem = make_problem(9, "plurality", 3, n=12, r=2)
    # A weighted engine on a cumulative clone (e.g. a reused LB engine)
    # must not decide the winner among {F, UB, LB}: it is bound to a
    # different problem and a scaled objective.
    cum = problem.with_score(CumulativeScore())
    weighted = BatchedDMEngine(cum, user_weights=np.full(problem.n, 7.0))
    reference = sandwich_select(problem, 2, method="dm", engine="dm-batched")
    hijacked = sandwich_select(
        problem,
        2,
        feasible_selector=lambda k: reference.seeds_feasible,
        engine=weighted,
    )
    assert hijacked.objective == pytest.approx(
        problem.objective(hijacked.seeds), abs=1e-10
    )
    assert hijacked.seeds.tolist() == reference.seeds.tolist()
    assert reference.objective == pytest.approx(
        problem.objective(reference.seeds), abs=1e-10
    )


def test_walk_engine_small_candidate_gains_match_full_scan():
    """The few-candidate path and the all-nodes scan must agree."""
    problem = make_problem(8, "cumulative", 3, n=16, r=2)
    base = (3,)
    few = np.array([0, 1])
    a = make_engine("rw", problem, rng=5, walks_per_node=8)
    b = make_engine("rw", problem, rng=5, walks_per_node=8)
    gains_few = a.marginal_gains(base, few)  # size < 8: per-candidate path
    gains_all = b.marginal_gains(base, np.arange(16))[few]  # full scan
    np.testing.assert_allclose(gains_few, gains_all, atol=1e-9)


# ----------------------------------------------------------------------
# Selection sessions: warm-start parity and state isolation
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 40),
    score_name=st.sampled_from(sorted(SCORE_FACTORIES)),
    horizon=st.integers(0, 6),
    data=st.data(),
)
def test_session_marginal_gains_match_stateless_rounds(
    seed, score_name, horizon, data
):
    """Warm-started rounds == stateless from-scratch rounds to 1e-10.

    Commits a random seed sequence one element at a time; after every
    commit, the session's gains (candidate deltas evolved against the
    committed trajectory) must match a fresh engine's stateless gains
    (the full set replayed from the unseeded base).
    """
    problem = make_problem(seed, score_name, horizon)
    n = problem.n
    engine = BatchedDMEngine(problem)
    reference = BatchedDMEngine(problem)
    session = engine.open_session()
    order = data.draw(
        st.lists(
            st.integers(0, n - 1), min_size=1, max_size=4, unique=True
        ),
        label="commit order",
    )
    for committed, nxt in enumerate(order):
        candidates = np.array(sorted(set(range(0, n, 3)) - set(order[:committed])))
        warm = session.marginal_gains(candidates)
        cold = reference.marginal_gains(tuple(order[:committed]), candidates)
        np.testing.assert_allclose(warm, cold, atol=1e-10, rtol=0)
        session.commit(nxt)
    assert session.value == pytest.approx(
        reference.evaluate_one(tuple(order)), abs=1e-10
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 25),
    score_name=st.sampled_from(sorted(SCORE_FACTORIES)),
    horizon=st.integers(0, 5),
)
def test_session_greedy_matches_manual_stateless_greedy(seed, score_name, horizon):
    """Session-driven greedy must select byte-identical seeds to PR-1-style
    stateless rounds (one engine.marginal_gains per round, empty-base)."""
    problem = make_problem(seed, score_name, horizon, n=11)
    k = 3
    warm = greedy_engine(BatchedDMEngine(problem), k, lazy=False)
    engine = BatchedDMEngine(problem)
    selected: list[int] = []
    gains_trace: list[float] = []
    current = engine.evaluate_one(())
    remaining = np.arange(problem.n)
    for _ in range(k):
        gains = engine.marginal_gains(
            tuple(selected), remaining, base_objective=current
        )
        idx = int(np.argmax(gains))
        selected.append(int(remaining[idx]))
        gains_trace.append(float(gains[idx]))
        current += gains_trace[-1]
        remaining = np.delete(remaining, idx)
    assert warm.seeds.tolist() == selected
    np.testing.assert_allclose(warm.gains, gains_trace, atol=1e-10)
    assert warm.objective == pytest.approx(current, abs=1e-10)


def test_session_prefix_values_and_wins_match_exact():
    problem = make_problem(11, "plurality", 4, n=14, r=3)
    engine = BatchedDMEngine(problem)
    session = engine.open_session()
    result = greedy_engine(engine, 6, session=session)
    ranking = result.seeds
    sizes = [0, 1, 3, 6]
    exact = DMEngine(problem).evaluate([ranking[:k] for k in sizes])
    np.testing.assert_allclose(session.prefix_values(sizes), exact, atol=1e-10)
    # Probe out of order to exercise the nearest-cached-prefix extension.
    for k in (6, 3, 5, 1, 4, 0, 2):
        assert session.prefix_wins(k) == problem.target_wins(ranking[:k])
    with pytest.raises(ValueError):
        session.prefix_wins(7)
    with pytest.raises(ValueError):
        session.prefix_values([-1])


@pytest.mark.parametrize("spec", ["dm", "dm-batched", "dm-mp:2", "rw", "sketch"])
def test_open_session_commit_tracks_engine_evaluate(spec):
    """Every backend's session accumulates exactly its own evaluate values."""
    problem = make_problem(3, "cumulative", 3, n=12, r=2)
    kwargs = {"walks_per_node": 8, "theta": 200} if spec in ("rw", "sketch") else {}
    with make_engine(spec, problem, rng=9, **kwargs) as engine:
        session = engine.open_session()
        assert session.value == pytest.approx(engine.evaluate_one(()), abs=1e-10)
        session.commit(4)
        session.commit(7)
        assert session.seeds == (4, 7)
        assert session.value == pytest.approx(engine.evaluate_one((4, 7)), abs=1e-9)
        np.testing.assert_allclose(
            session.marginal_gains(np.array([0, 1])),
            engine.marginal_gains((4, 7), [0, 1]),
            atol=1e-9,
        )


def test_interleaved_sessions_do_not_thrash_base_cache():
    """Regression: the old single-slot ``base_value`` memo recomputed the
    base on every alternation between two interleaved selection loops
    (e.g. sandwich's upper/lower greedies sharing one engine).  Sessions
    carry their own base value, so each interleaved round evaluates only
    its candidate extension."""
    problem = make_problem(5, "cumulative", 3)
    engine = DMEngine(problem)
    one = engine.open_session()
    two = engine.open_session(base=(3,))
    baseline = engine.stats.sets_evaluated
    for cand in (0, 1, 2, 4):
        one.marginal_gains(np.array([cand]))
        two.marginal_gains(np.array([cand]))
    # 8 interleaved single-candidate rounds -> exactly 8 evaluated sets
    # (the thrashing memo re-evaluated the base too: 16).
    assert engine.stats.sets_evaluated - baseline == 8


def test_session_warm_start_does_less_evolution_work():
    """Deterministic miniature of benchmarks/bench_session_warmstart.py:
    warm-started exhaustive greedy must spend strictly less evolution work
    than stateless rounds while selecting the same seeds."""
    problem = make_problem(13, "plurality", 8, n=40, r=2)
    k = 4
    warm_engine = BatchedDMEngine(problem)
    warm = greedy_engine(warm_engine, k, lazy=False)
    cold_engine = BatchedDMEngine(problem)
    selected: list[int] = []
    current = cold_engine.evaluate_one(())
    remaining = np.arange(problem.n)
    for _ in range(k):
        gains = cold_engine.marginal_gains(
            tuple(selected), remaining, base_objective=current
        )
        idx = int(np.argmax(gains))
        selected.append(int(remaining[idx]))
        current += float(gains[idx])
        remaining = np.delete(remaining, idx)
    assert warm.seeds.tolist() == selected
    n = problem.n
    assert warm_engine.stats.evolution_work(n) < cold_engine.stats.evolution_work(n)


def test_engine_stats_reset():
    problem = make_problem(0, "cumulative", 3)
    engine = BatchedDMEngine(problem)
    engine.evaluate([(1,), (2, 3)])
    assert engine.stats.evaluate_calls == 1
    assert engine.stats.sets_evaluated == 2
    engine.stats.reset()
    assert engine.stats.evaluate_calls == 0
    assert engine.stats.evolution_work(problem.n) == 0.0


# ----------------------------------------------------------------------
# In-place sparse re-pin: structure-reusing surgery == legacy rebuild
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 40),
    score_name=st.sampled_from(sorted(SCORE_FACTORIES)),
    horizon=st.integers(1, 6),
    data=st.data(),
)
def test_inplace_repin_matches_legacy_rebuild(seed, score_name, horizon, data):
    """The in-place re-pin must reproduce the COO->CSR rebuild bit for bit
    (same pinned-value splices, same explicit-zero structure) while never
    performing a rebuild, on both the stateless and warm-started paths."""
    problem = make_problem(seed, score_name, horizon)
    n = problem.n
    num_sets = data.draw(st.integers(1, 5))
    seed_sets = [
        data.draw(st.lists(st.integers(0, n - 1), min_size=0, max_size=4))
        for _ in range(num_sets)
    ]
    # densify_threshold=1.0 keeps every step in the sparse phase, the only
    # code path the re-pin mode touches.
    inplace = BatchedDMEngine(problem, densify_threshold=1.0)
    legacy = BatchedDMEngine(problem, densify_threshold=1.0, repin="rebuild")
    np.testing.assert_array_equal(
        inplace.evaluate(seed_sets), legacy.evaluate(seed_sets)
    )
    assert inplace.stats.repin_rebuilds == 0
    assert legacy.stats.repin_rebuilds == legacy.stats.sparse_steps
    # Warm-started sessions exercise zero_rows (committed-seed zeroing).
    commits = data.draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=3, unique=True)
    )
    s_inplace = inplace.open_session()
    s_legacy = legacy.open_session()
    for commit in commits:
        candidates = np.array(sorted(set(range(n)) - set(commits)))
        np.testing.assert_array_equal(
            s_inplace.marginal_gains(candidates),
            s_legacy.marginal_gains(candidates),
        )
        s_inplace.commit(commit)
        s_legacy.commit(commit)
    assert s_inplace.value == s_legacy.value


def test_repin_mode_validated():
    problem = make_problem(0, "cumulative", 2)
    with pytest.raises(ValueError):
        BatchedDMEngine(problem, repin="in-place-ish")


# ----------------------------------------------------------------------
# Multiprocess fan-out engine (dm-mp)
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 20),
    score_name=st.sampled_from(sorted(SCORE_FACTORIES)),
    horizon=st.integers(0, 4),
    workers=st.sampled_from([1, 2, 4]),
    transport=st.sampled_from(["pipe", "shm"]),
    data=st.data(),
)
def test_mp_engine_matches_batched_objectives(
    seed, score_name, horizon, workers, transport, data
):
    """dm-mp evaluation == dm-batched byte for byte — over both the pipe
    and the shared-memory transport — and the probe accounting
    (evaluate_calls / sets_evaluated) is identical for every worker
    count: the parent counts probes, workers only evolve."""
    problem = make_problem(seed, score_name, horizon)
    n = problem.n
    num_sets = data.draw(st.integers(1, 6))
    seed_sets = [
        data.draw(st.lists(st.integers(0, n - 1), min_size=0, max_size=3))
        for _ in range(num_sets)
    ]
    batched = BatchedDMEngine(problem)
    expected = batched.evaluate(seed_sets)
    with MultiprocessDMEngine(
        problem, workers=workers, min_fanout=1, transport=transport
    ) as engine:
        # Chunked scoring can reorder float sums (numpy pairwise summation
        # depends on block width), so values carry the 1e-10 parity
        # contract, not bitwise equality.
        np.testing.assert_allclose(
            engine.evaluate(seed_sets), expected, atol=1e-10, rtol=0
        )
        assert engine.stats.evaluate_calls == batched.stats.evaluate_calls
        assert engine.stats.sets_evaluated == batched.stats.sets_evaluated
        assert engine.stats.ipc_bytes > 0  # every fan-out is accounted


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_mp_greedy_selects_identical_seeds(workers):
    """Fanned-out greedy must pick byte-identical seeds and gains for any
    worker count, with probe accounting matching the batched engine."""
    problem = make_problem(2, "plurality", 4, n=14)
    ref_engine = BatchedDMEngine(problem)
    reference = greedy_engine(ref_engine, 4, lazy=False)
    with MultiprocessDMEngine(problem, workers=workers, min_fanout=1) as engine:
        result = greedy_engine(engine, 4, lazy=False)
        assert result.seeds.tolist() == reference.seeds.tolist()
        np.testing.assert_allclose(result.gains, reference.gains, atol=1e-10, rtol=0)
        assert result.evaluations == reference.evaluations
        assert engine.stats.evaluate_calls == ref_engine.stats.evaluate_calls
        assert engine.stats.sets_evaluated == ref_engine.stats.sets_evaluated
        # Work was genuinely sharded: every worker evolved some columns.
        assert all(
            w.dense_column_steps + w.sparse_steps > 0 for w in engine.worker_stats
        )


def test_mp_small_rounds_run_locally_without_pool():
    """Below min_fanout the parent evaluates locally — the pool never
    starts, yet results and session commits stay byte-identical."""
    problem = make_problem(5, "cumulative", 3, n=12, r=2)
    reference = BatchedDMEngine(problem)
    with MultiprocessDMEngine(problem, workers=2, min_fanout=64) as engine:
        session = engine.open_session()
        ref_session = reference.open_session()
        for commit in (3, 8):
            candidates = np.array([1, 2, 5])
            np.testing.assert_array_equal(
                session.marginal_gains(candidates),
                ref_session.marginal_gains(candidates),
            )
            session.commit(commit)
            ref_session.commit(commit)
        assert session.value == ref_session.value
        assert engine._handles is None  # pool never spawned


@pytest.mark.parametrize("start_method", ["fork", "forkserver"])
def test_mp_session_commit_broadcast_across_start_methods(start_method):
    """Session commit broadcast smoke under fork *and* forkserver: workers
    fold every committed seed into their local trajectory (or lazily
    rebuild it), so warm-started rounds stay byte-identical to dm-batched
    however the pool was started."""
    import multiprocessing as mp

    if start_method not in mp.get_all_start_methods():
        pytest.skip(f"start method {start_method!r} unavailable")
    problem = make_problem(4, "plurality", 3, n=12, r=2)
    reference = BatchedDMEngine(problem)
    ref_session = reference.open_session()
    with MultiprocessDMEngine(
        problem, workers=2, start_method=start_method, min_fanout=1
    ) as engine:
        assert len(engine.ping()) == 2
        session = engine.open_session()
        for commit in (6, 2, 9):
            candidates = np.array(
                sorted(set(range(problem.n)) - set(session.seeds))
            )
            np.testing.assert_allclose(
                session.marginal_gains(candidates),
                ref_session.marginal_gains(candidates),
                atol=1e-10,
                rtol=0,
            )
            session.commit(commit)
            ref_session.commit(commit)
        assert session.value == pytest.approx(ref_session.value, abs=1e-10)
        # Prefix probes (win-min's path) stay parent-side and exact.
        for k in (0, 1, 3):
            assert session.prefix_wins(k) == problem.target_wins(
                session.prefix_seeds(k)
            )


def test_mp_engine_close_is_idempotent_and_restartable():
    problem = make_problem(1, "cumulative", 2, n=10, r=2)
    engine = MultiprocessDMEngine(problem, workers=2, min_fanout=1)
    sets = [(1,), (2,), (3,), (4,)]
    expected = BatchedDMEngine(problem).evaluate(sets)
    np.testing.assert_array_equal(engine.evaluate(sets), expected)
    engine.close()
    engine.close()  # idempotent
    assert engine._handles is None
    # The pool restarts lazily after close.
    np.testing.assert_array_equal(engine.evaluate(sets), expected)
    engine.close()


def test_mp_dead_worker_resharded_then_respawned():
    """A killed worker no longer fails the round: its chunk re-shards to
    the survivor byte-identically, the loss lands in the supervision
    counters, and the dead slot respawns before the next round."""
    import os
    import signal
    import time

    problem = make_problem(1, "cumulative", 2, n=10, r=2)
    sets = [(1,), (2,), (3,), (4,)]
    expected = BatchedDMEngine(problem).evaluate(sets)
    engine = MultiprocessDMEngine(problem, workers=2, min_fanout=1)
    try:
        np.testing.assert_array_equal(engine.evaluate(sets), expected)
        os.kill(engine._handles[1].process.pid, signal.SIGKILL)
        time.sleep(0.2)
        # The in-flight round survives on the remaining worker.
        np.testing.assert_array_equal(engine.evaluate(sets), expected)
        assert engine.stats.workers_lost == 1
        assert engine.stats.chunks_resharded >= 1
        # The next dispatch heals the pool back to full strength.
        np.testing.assert_array_equal(engine.evaluate(sets), expected)
        assert engine.stats.workers_respawned == 1
        assert len(engine._handles) == 2
        assert all(h.process.is_alive() for h in engine._handles)
    finally:
        engine.close()


def test_mp_worker_count_validated():
    problem = make_problem(0, "cumulative", 2)
    with pytest.raises(ValueError):
        MultiprocessDMEngine(problem, workers=0)
    with pytest.raises(ValueError):
        MultiprocessDMEngine(problem, workers=-3)


# ----------------------------------------------------------------------
# Zero-copy shm transport (dm-mp:<W>:shm)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_mp_shm_selections_match_pipe_transport(workers):
    """Greedy selections over the shm transport must be byte-identical to
    the pipe transport (and to dm-batched) at workers 1/2/4, with the shm
    rounds moving strictly fewer bytes through the pipes."""
    problem = make_problem(3, "plurality", 4, n=14)
    reference = greedy_engine(BatchedDMEngine(problem), 4, lazy=False)
    results = {}
    ipc = {}
    for transport in ("pipe", "shm"):
        with MultiprocessDMEngine(
            problem, workers=workers, min_fanout=1, transport=transport
        ) as engine:
            results[transport] = greedy_engine(engine, 4, lazy=False)
            ipc[transport] = engine.stats.ipc_bytes
    for transport, result in results.items():
        assert result.seeds.tolist() == reference.seeds.tolist(), transport
        np.testing.assert_allclose(
            result.gains, reference.gains, atol=1e-10, rtol=0
        )
    assert 0 < ipc["shm"] < ipc["pipe"]


@pytest.mark.parametrize("start_method", ["fork", "forkserver"])
def test_mp_shm_commit_broadcast_across_start_methods(start_method):
    """Under shm the commit slab publishes the parent's trajectory; worker
    sessions must stay byte-identical to dm-batched whether the problem
    arrived by fork inheritance or was rebuilt from the mapped arrays."""
    import multiprocessing as mp

    if start_method not in mp.get_all_start_methods():
        pytest.skip(f"start method {start_method!r} unavailable")
    problem = make_problem(6, "plurality", 3, n=12, r=2)
    reference = BatchedDMEngine(problem)
    ref_session = reference.open_session()
    with MultiprocessDMEngine(
        problem,
        workers=2,
        start_method=start_method,
        min_fanout=1,
        transport="shm",
    ) as engine:
        assert len(engine.ping()) == 2
        session = engine.open_session()
        for commit in (5, 1, 8):
            candidates = np.array(
                sorted(set(range(problem.n)) - set(session.seeds))
            )
            np.testing.assert_allclose(
                session.marginal_gains(candidates),
                ref_session.marginal_gains(candidates),
                atol=1e-10,
                rtol=0,
            )
            session.commit(commit)
            ref_session.commit(commit)
        assert session.value == pytest.approx(ref_session.value, abs=1e-10)


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_mp_target_opinion_rows_fanned_out(transport):
    """The dense rows fan-out must reproduce the batched engine's rows for
    both transports (shm writes the blocks straight into reply slabs)."""
    problem = make_problem(7, "cumulative", 4, n=13, r=2)
    sets = [(1,), (2, 5), (), (8,), (3, 4), (11,), (0,), (9, 10)]
    expected = BatchedDMEngine(problem).target_opinion_rows(sets)
    with MultiprocessDMEngine(
        problem, workers=2, min_fanout=1, transport=transport
    ) as engine:
        np.testing.assert_allclose(
            engine.target_opinion_rows(sets), expected, atol=1e-10, rtol=0
        )
        # Small requests stay local and bitwise identical.
        engine.min_fanout = 64
        np.testing.assert_array_equal(
            engine.target_opinion_rows(sets), expected
        )


def test_mp_shm_close_unlinks_segments_and_is_idempotent():
    """close() must unlink every arena segment, never hang, and leave the
    engine restartable; gc of an unclosed engine must also unlink."""
    import gc

    from repro.core.shm import attach_segment

    problem = make_problem(1, "cumulative", 2, n=10, r=2)
    sets = [(1,), (2,), (3,), (4,)]
    expected = BatchedDMEngine(problem).evaluate(sets)
    engine = MultiprocessDMEngine(
        problem, workers=2, min_fanout=1, transport="shm"
    )
    np.testing.assert_allclose(engine.evaluate(sets), expected, atol=1e-10)
    names = engine._arena.names
    assert names
    engine.close()
    engine.close()  # idempotent
    for name in names:
        with pytest.raises(FileNotFoundError):
            attach_segment(name)
    # Restart after close, then leave cleanup to garbage collection.
    np.testing.assert_allclose(engine.evaluate(sets), expected, atol=1e-10)
    names = engine._arena.names
    del engine
    gc.collect()
    for name in names:
        with pytest.raises(FileNotFoundError):
            attach_segment(name)


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_mp_close_robust_to_crashed_worker(transport):
    """Crash injection: a SIGKILLed worker re-shards in-flight and
    respawns byte-identically (shm respawns re-attach the live arena),
    and close() still returns promptly (no hang on the dead pipe),
    unlinks the shm segments, and stays idempotent."""
    import os
    import signal
    import time

    from repro.core.shm import attach_segment

    problem = make_problem(2, "cumulative", 2, n=10, r=2)
    sets = [(1,), (2,), (3,), (4,)]
    expected = BatchedDMEngine(problem).evaluate(sets)
    engine = MultiprocessDMEngine(
        problem, workers=2, min_fanout=1, transport=transport
    )
    try:
        np.testing.assert_array_equal(engine.evaluate(sets), expected)
        names = engine._arena.names if transport == "shm" else ()
        os.kill(engine._handles[0].process.pid, signal.SIGKILL)
        time.sleep(0.2)
        # The crashed round survives on the remaining worker, then the
        # supervisor heals the pool (the shm respawn re-attaches the
        # same segments — never a second arena).
        np.testing.assert_array_equal(engine.evaluate(sets), expected)
        assert engine.stats.workers_lost == 1
        np.testing.assert_array_equal(engine.evaluate(sets), expected)
        assert engine.stats.workers_respawned == 1
        if transport == "shm":
            assert engine._arena.names == names
        start = time.monotonic()
        engine.close()
        engine.close()
        assert time.monotonic() - start < 15.0
        for name in names:  # close unlinked the arena exactly once
            with pytest.raises(FileNotFoundError):
                attach_segment(name)
        # The pool restarts lazily with a fresh arena after the close.
        np.testing.assert_array_equal(engine.evaluate(sets), expected)
    finally:
        engine.close()


def test_mp_transport_validated():
    problem = make_problem(0, "cumulative", 2)
    with pytest.raises(ValueError, match="transport"):
        MultiprocessDMEngine(problem, transport="carrier-pigeon")


def test_parse_engine_spec_shm_suffix():
    assert parse_engine_spec("dm-mp:shm") == ("dm-mp", {"transport": "shm"})
    assert parse_engine_spec("dm-mp:3:shm") == (
        "dm-mp",
        {"workers": 3, "transport": "shm"},
    )
    assert spec_is_exact_dm("dm-mp:2:shm")
    for bad in ("dm-mp:shm:2", "dm-mp:shm:shm", "rw-store:shm", "dm:shm"):
        with pytest.raises(ValueError):
            parse_engine_spec(bad)


def test_make_engine_builds_shm_transport():
    problem = make_problem(0, "cumulative", 2)
    with make_engine("dm-mp:2:shm", problem) as engine:
        assert isinstance(engine, MultiprocessDMEngine)
        assert engine.workers == 2
        assert engine.transport == "shm"


# ----------------------------------------------------------------------
# Serving seams: query_sets / coalesced_gains batch-stability
# ----------------------------------------------------------------------
SERVING_SPECS = ("dm", "dm-batched", "dm-mp:2", "dm-mp:2:shm")


@pytest.mark.parametrize("spec", SERVING_SPECS)
@pytest.mark.parametrize("score_name", ["cumulative", "plurality"])
def test_query_sets_batch_equals_singles_bitwise(spec, score_name):
    """The serving batch entry: one query_sets call over N sets must be
    bitwise the N one-set calls — values and win flags — so coalesced
    win/value probes answer byte-identically to serial ones."""
    problem = make_problem(11, score_name, 4)
    sets = [(1,), (2, 5), (0, 3, 7), (), (4, 4, 9)]
    with make_engine(spec, problem) as engine:
        values, wins = engine.query_sets(sets, wins=True)
        assert wins is not None and wins.dtype == bool
        for i, seed_set in enumerate(sets):
            value_i, wins_i = engine.query_sets([seed_set], wins=True)
            assert values[i] == value_i[0]  # bitwise, not allclose
            assert wins[i] == wins_i[0]
        # And the win flags agree with the problem's own verdict.
        for i, seed_set in enumerate(sets):
            expected = problem.target_wins(np.asarray(seed_set, dtype=np.int64))
            assert bool(wins[i]) == expected


@pytest.mark.parametrize("spec", SERVING_SPECS)
def test_coalesced_gains_batch_stable_bitwise(spec):
    """coalesced_gains is the batcher's shared round: its values must be
    bitwise independent of how candidates are grouped, before and after
    commits, and consistent with marginal_gains to float tolerance."""
    problem = make_problem(12, "cumulative", 4)
    candidates = np.array([1, 2, 4, 5, 7, 8, 9, 10], dtype=np.int64)
    with make_engine(spec, problem) as engine:
        session = engine.open_session((3,))
        batched = session.coalesced_gains(candidates)
        singles = np.concatenate(
            [session.coalesced_gains(candidates[i : i + 1])
             for i in range(len(candidates))]
        )
        np.testing.assert_array_equal(batched, singles)
        np.testing.assert_allclose(
            batched, session.marginal_gains(candidates), atol=1e-10
        )
        # Same contract after a commit moves the prefix.
        session.commit(6)
        batched = session.coalesced_gains(candidates)
        singles = np.concatenate(
            [session.coalesced_gains(candidates[i : i + 1])
             for i in range(len(candidates))]
        )
        np.testing.assert_array_equal(batched, singles)


def test_pool_stats_accounting():
    """pool_stats: zeros on the single-process engines, live rounds /
    busy-time / shm segment names on the pool (the serving 'stats' op)."""
    problem = make_problem(4, "cumulative", 3)
    with make_engine("dm-batched", problem) as engine:
        stats = engine.pool_stats()
        assert stats["workers"] == 0 and stats["started"] is False
    with make_engine("dm-mp:2:shm", problem, min_fanout=1) as engine:
        assert engine.pool_stats()["started"] is False
        engine.evaluate([(1,), (2,), (3,), (4,)])
        stats = engine.pool_stats()
        assert stats["started"] is True
        assert stats["workers"] == 2 and stats["transport"] == "shm"
        assert stats["rounds"] >= 1 and stats["busy_s"] > 0
        assert stats["shm_segments"]  # arena is mapped and named
    # close() unlinked the arena: a fresh stats call shows none.
    assert engine.pool_stats()["shm_segments"] == []
