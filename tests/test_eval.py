"""Integration tests for the harness, metrics, reporting, and case study."""

import numpy as np
import pytest

from repro.datasets.dblp import dblp_like
from repro.datasets.yelp import yelp_like
from repro.eval.case_study import acm_election_case_study
from repro.eval.harness import METHOD_NAMES, run_methods, select_seeds
from repro.eval.metrics import relative_score, seed_overlap
from repro.eval.reporting import format_series, format_table
from repro.voting.scores import PluralityScore


@pytest.fixture(scope="module")
def small_dataset():
    return yelp_like(n=150, r=3, rng=0, horizon=4)


@pytest.fixture(scope="module")
def small_problem(small_dataset):
    return small_dataset.problem(PluralityScore())


FAST_KWARGS = {
    "rw": {"lambda_cap": 8},
    "rs": {"theta": 200},
    "ic": {"theta_cap": 2000},
    "lt": {"theta_cap": 2000},
}


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_every_method_returns_k_distinct_seeds(small_problem, method):
    seeds = select_seeds(method, small_problem, 4, rng=1, **FAST_KWARGS.get(method, {}))
    assert seeds.size == 4
    assert len(set(seeds.tolist())) == 4
    assert seeds.min() >= 0 and seeds.max() < small_problem.n


def test_select_seeds_unknown_method(small_problem):
    with pytest.raises(ValueError):
        select_seeds("oracle", small_problem, 2)


def test_run_methods_structure(small_problem):
    runs = run_methods(
        small_problem,
        ks=[2, 4],
        methods=["rw", "dc"],
        rng=2,
        method_kwargs=FAST_KWARGS,
    )
    assert len(runs) == 4
    assert {r.method for r in runs} == {"rw", "dc"}
    for r in runs:
        assert r.seconds >= 0
        assert r.score_value >= 0
        assert r.seeds.size == r.k


def test_seed_overlap_metric():
    assert seed_overlap(np.array([1, 2, 3]), np.array([2, 3, 4])) == pytest.approx(2 / 3)
    assert seed_overlap(np.array([]), np.array([])) == 1.0
    assert seed_overlap(np.array([1]), np.array([2])) == 0.0


def test_relative_score():
    assert relative_score(5.0, 10.0) == 0.5
    assert relative_score(0.0, 0.0) == 1.0
    assert relative_score(1.0, 0.0) == float("inf")


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert "-" in lines[1]


def test_format_series():
    out = format_series("k", [1, 2], {"rw": [0.1, 0.2], "dm": [0.3, 0.4]})
    assert "rw" in out and "dm" in out and "k" in out


def test_case_study_structure():
    ds = dblp_like(n=250, rng=4, horizon=5)
    result = acm_election_case_study(ds, k=10, rng=5, lambda_cap=8)
    assert result.votes_after >= result.votes_before
    assert len(result.rows) == 7
    assert 0.0 <= result.neutral_fraction_of_switchers <= 1.0
    for row in result.rows:
        assert 0 <= row.votes_without_seeds <= row.total_users
        assert 0 <= row.votes_with_seeds <= row.total_users
        assert 0 <= row.pct_without <= 100
    assert 0 < result.share_after <= 100


def test_case_study_requires_domains(small_dataset):
    with pytest.raises(ValueError):
        acm_election_case_study(small_dataset, k=5)


def test_run_methods_store_dir_composes_with_parameterized_specs(tmp_path):
    """Regression: run_methods(store_dir=...) must honor the engine spec's
    shard count (and mmap directory) when building the shared store — the
    naive shards=1 store was rejected by rw-store:<S> engines."""
    import numpy as np

    from repro.core.problem import FJVoteProblem
    from repro.eval.harness import run_methods
    from repro.voting.scores import PluralityScore
    from tests.conftest import random_instance

    state = random_instance(n=12, r=2, seed=9)
    problem = FJVoteProblem(state, 0, 3, PluralityScore())
    directory = str(tmp_path / "pools")
    for spec in ("rw-store:2", f"rw-store:2:mmap={directory}"):
        runs = run_methods(
            problem,
            [2],
            ["dm"],
            rng=1,
            engine=spec,
            store_dir=directory,
        )
        assert len(runs) == 1 and runs[0].seeds.size == 2
    import pytest

    with pytest.raises(ValueError, match="conflicts with the engine spec"):
        run_methods(
            problem,
            [2],
            ["dm"],
            rng=1,
            engine=f"rw-store:2:mmap={tmp_path / 'other'}",
            store_dir=directory,
        )
