"""Deterministic retry/backoff shared by reconnect and respawn paths.

Both the TCP :class:`~repro.core.engine_net.HostPool` (connect and
rejoin) and the local pool supervisor retry transient failures.  The
schedule lives here so it is computed once, tested once, and — like
every other source of nondeterminism in this repo — *seeded*: jitter
comes from an explicit seed, never from global RNG state, so two runs
with the same seed retry at the same instants.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["backoff_schedule", "with_backoff"]

T = TypeVar("T")


def backoff_schedule(
    retries: int,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    jitter_seed: int | None = None,
) -> list[float]:
    """Exponential delays ``base_delay * 2**i`` capped at ``max_delay``.

    With ``jitter_seed`` each delay is scaled by a factor drawn uniformly
    from [0.5, 1.0) ("decorrelated-down" jitter: never longer than the
    deterministic ladder, so timeouts stay bounded).  The same seed
    always yields the same schedule.
    """
    delays = [min(base_delay * (2.0**i), max_delay) for i in range(max(retries, 0))]
    if jitter_seed is not None and delays:
        rng = np.random.default_rng(np.random.SeedSequence([int(jitter_seed)]))
        factors = rng.uniform(0.5, 1.0, size=len(delays))
        delays = [d * float(f) for d, f in zip(delays, factors)]
    return delays


def with_backoff(
    fn: Callable[[], T],
    retries: int = 5,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    jitter_seed: int | None = None,
    exceptions: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    schedule: Sequence[float] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the schedule is exhausted.

    ``fn`` runs once plus once per delay in the schedule (``retries``
    delays unless an explicit ``schedule`` is given); only ``exceptions``
    are retried, anything else propagates immediately, and the final
    failure re-raises the last exception.  ``sleep`` is injectable so
    unit tests can capture the schedule without waiting.
    """
    delays = (
        list(schedule)
        if schedule is not None
        else backoff_schedule(retries, base_delay, max_delay, jitter_seed)
    )
    last: BaseException | None = None
    for attempt in range(len(delays) + 1):
        try:
            return fn()
        except exceptions as exc:
            last = exc
            if attempt == len(delays):
                raise
            sleep(delays[attempt])
    raise last if last is not None else RuntimeError("unreachable")  # pragma: no cover
