"""Tests for the dataset recipes, the running example, and IO round trips."""

import numpy as np
import pytest

from repro.datasets.dblp import DOMAINS, dblp_like
from repro.datasets.example import TABLE_I, TABLE_I_OPINIONS, running_example
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.synth import activity_edge_weights, variance_stubbornness
from repro.datasets.twitter import (
    twitter_mask,
    twitter_social_distancing,
    twitter_us_election,
)
from repro.datasets.yelp import yelp_like
from repro.voting.scores import CopelandScore, CumulativeScore, PluralityScore


# ----------------------------------------------------------------------
# The running example must reproduce Table I exactly.
# ----------------------------------------------------------------------
def test_running_example_reproduces_table1_scores():
    ds = running_example()
    problems = {
        "cumulative": ds.problem(CumulativeScore()),
        "plurality": ds.problem(PluralityScore()),
        "copeland": ds.problem(CopelandScore()),
    }
    for seed_set, (cum, plu, cope) in TABLE_I.items():
        seeds = np.array(seed_set, dtype=np.int64)
        assert problems["cumulative"].objective(seeds) == pytest.approx(cum)
        assert problems["plurality"].objective(seeds) == plu
        assert problems["copeland"].objective(seeds) == cope


def test_running_example_reproduces_table1_opinions():
    ds = running_example()
    problem = ds.problem(CumulativeScore())
    for seed_set, expected in TABLE_I_OPINIONS.items():
        seeds = np.array(seed_set, dtype=np.int64)
        np.testing.assert_allclose(
            problem.target_opinions(seeds), expected, atol=1e-12
        )


def test_running_example_competitor_pinned():
    ds = running_example()
    problem = ds.problem(CumulativeScore())
    np.testing.assert_allclose(
        problem.competitor_opinions()[0], [0.35, 0.75, 0.78, 0.90]
    )


# ----------------------------------------------------------------------
# Synthetic recipes
# ----------------------------------------------------------------------
def _check_dataset(ds, expected_r):
    state = ds.state
    assert state.r == expected_r
    assert state.initial_opinions.shape == (expected_r, ds.n)
    assert 0 <= state.initial_opinions.min() <= state.initial_opinions.max() <= 1
    assert 0 <= state.stubbornness.min() <= state.stubbornness.max() <= 1
    sums = np.asarray(state.graph(0).csr.sum(axis=0)).ravel()
    np.testing.assert_allclose(sums, 1.0, atol=1e-9)
    assert 0 <= ds.target < expected_r


def test_dblp_like_structure():
    ds = dblp_like(n=300, rng=0)
    _check_dataset(ds, 2)
    member = ds.meta["membership"]
    assert member.shape == (len(DOMAINS), 300)
    counts = member.sum(axis=0)
    assert counts.min() >= 1 and counts.max() <= 3  # 1-3 domains per user


def test_yelp_like_structure():
    ds = yelp_like(n=300, r=5, rng=1)
    _check_dataset(ds, 5)
    assert ds.state.candidates[ds.target] == "Chinese"
    with pytest.raises(ValueError):
        yelp_like(n=100, r=11)


@pytest.mark.parametrize(
    "maker,r",
    [
        (twitter_us_election, 4),
        (twitter_social_distancing, 2),
        (twitter_mask, 2),
    ],
)
def test_twitter_structures(maker, r):
    ds = maker(n=300, rng=2)
    _check_dataset(ds, r)
    assert ds.target == 0


def test_twitter_target_starts_behind():
    """Table VI requires a target that must fight to win."""
    for maker in (twitter_mask, twitter_social_distancing):
        ds = maker(n=800, rng=3)
        problem = ds.problem(PluralityScore(), horizon=10)
        scores = problem.all_scores(())
        assert scores[0] < scores[1]


def test_activity_edge_weights_range():
    w = activity_edge_weights(1000, mu=10.0, rng=4)
    assert 0 < w.min() and w.max() < 1
    # Larger mu -> smaller weights for the same activity.
    w_large_mu = activity_edge_weights(1000, mu=100.0, rng=4)
    assert w_large_mu.mean() < w.mean()
    with pytest.raises(ValueError):
        activity_edge_weights(10, mu=0.0)


def test_variance_stubbornness_range():
    rng = np.random.default_rng(5)
    opinions = rng.random((3, 200))
    stub = variance_stubbornness(opinions, rng=6)
    assert stub.shape == (200,)
    assert 0 <= stub.min() <= stub.max() <= 1


def test_dataset_problem_factory():
    ds = yelp_like(n=200, r=3, rng=7, horizon=6)
    problem = ds.problem(PluralityScore())
    assert problem.horizon == 6
    assert problem.target == ds.target
    assert ds.problem(PluralityScore(), horizon=2).horizon == 2


# ----------------------------------------------------------------------
# IO round trip
# ----------------------------------------------------------------------
def test_save_load_round_trip(tmp_path):
    ds = yelp_like(n=150, r=3, rng=8, horizon=9)
    path = tmp_path / "yelp.npz"
    save_dataset(ds, path)
    loaded = load_dataset(path)
    assert loaded.name == ds.name
    assert loaded.target == ds.target
    assert loaded.horizon == 9
    assert loaded.state.candidates == ds.state.candidates
    np.testing.assert_allclose(
        loaded.state.initial_opinions, ds.state.initial_opinions
    )
    np.testing.assert_allclose(loaded.state.stubbornness, ds.state.stubbornness)
    np.testing.assert_allclose(
        loaded.state.graph(0).csr.toarray(), ds.state.graph(0).csr.toarray()
    )
    # Shared-graph structure is preserved (one stored copy).
    assert loaded.state.graph(0) is loaded.state.graph(2)
    assert loaded.meta.get("mu") == 10.0


def test_save_load_running_example(tmp_path):
    ds = running_example()
    path = tmp_path / "example.npz"
    save_dataset(ds, path)
    loaded = load_dataset(path)
    problem = loaded.problem(PluralityScore())
    assert problem.objective(np.array([2])) == 4


def test_edge_list_round_trip(tmp_path):
    from repro.datasets.io import load_edge_list, save_edge_list

    ds = yelp_like(n=80, r=3, rng=9)
    graph = ds.state.graph(0)
    path = tmp_path / "graph.txt"
    save_edge_list(graph, path)
    # Stored weights are already stochastic: reload without renormalizing.
    loaded = load_edge_list(path, n=80, normalize=False)
    np.testing.assert_allclose(
        loaded.csr.toarray(), graph.csr.toarray(), atol=1e-9
    )


def test_edge_list_parsing(tmp_path):
    from repro.datasets.io import load_edge_list

    path = tmp_path / "tiny.txt"
    path.write_text("# comment\n0 1\n1 2 3.5\n% another comment\n")
    graph = load_edge_list(path)
    assert graph.n == 3
    sources, weights = graph.in_neighbors(2)
    assert sources.tolist() == [1]
    np.testing.assert_allclose(weights, [1.0])


def test_edge_list_errors(tmp_path):
    from repro.datasets.io import load_edge_list

    empty = tmp_path / "empty.txt"
    empty.write_text("# nothing\n")
    with pytest.raises(ValueError, match="no edges"):
        load_edge_list(empty)
    bad = tmp_path / "bad.txt"
    bad.write_text("42\n")
    with pytest.raises(ValueError, match="malformed"):
        load_edge_list(bad)
